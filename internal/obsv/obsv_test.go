package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndCollector(t *testing.T) {
	col := NewCollector()
	tr := NewTracer(col)

	root := tr.Start(0, KindInstance, "Figure4")
	root.Stack = "BIS"
	root.Pattern = "Query"
	act := tr.Start(root.SpanID(), KindActivity, "RetrieveOrder")
	sql := tr.Start(act.SpanID(), KindSQL, "SELECT")
	sql.Set("table", "Orders").End(OutcomeOK)
	act.End(OutcomeOK)
	root.End(OutcomeOK)

	if col.Len() != 3 {
		t.Fatalf("want 3 spans, got %d", col.Len())
	}
	roots := col.Roots()
	if len(roots) != 1 || roots[0].Name != "Figure4" {
		t.Fatalf("roots = %+v", roots)
	}
	kids := col.Children(roots[0].ID)
	if len(kids) != 1 || kids[0].Name != "RetrieveOrder" {
		t.Fatalf("children of root = %+v", kids)
	}
	grand := col.Children(kids[0].ID)
	if len(grand) != 1 || grand[0].Kind != KindSQL {
		t.Fatalf("grandchildren = %+v", grand)
	}
	if grand[0].Attrs["table"] != "Orders" {
		t.Fatalf("attrs = %v", grand[0].Attrs)
	}
	tree := col.TreeString()
	if !strings.Contains(tree, "instance Figure4 [ok] stack=BIS pattern=Query") {
		t.Fatalf("tree rendering:\n%s", tree)
	}
}

func TestSpanEndIdempotentAndNilSafety(t *testing.T) {
	col := NewCollector()
	tr := NewTracer(col)
	s := tr.Start(0, KindActivity, "a")
	s.End(OutcomeFault)
	s.End(OutcomeOK) // second End must not re-export or change outcome
	if col.Len() != 1 {
		t.Fatalf("want 1 export, got %d", col.Len())
	}
	if col.Spans()[0].Outcome != OutcomeFault {
		t.Fatalf("outcome overwritten: %s", col.Spans()[0].Outcome)
	}

	// Nil tracer and nil span must be inert everywhere.
	var nt *Tracer
	ns := nt.Start(0, KindSQL, "x")
	if ns != nil {
		t.Fatal("nil tracer should return nil span")
	}
	ns.Set("k", "v")
	ns.SetOutcome(OutcomeOK)
	ns.End(OutcomeOK)
	if ns.SpanID() != 0 || ns.Duration() != 0 {
		t.Fatal("nil span methods should no-op")
	}
	nt.SetAmbient(7)
	if nt.Ambient() != 0 {
		t.Fatal("nil tracer ambient should be 0")
	}
}

func TestTracerAmbient(t *testing.T) {
	tr := NewTracer()
	if tr.Ambient() != 0 {
		t.Fatal("fresh tracer ambient must be 0")
	}
	tr.SetAmbient(42)
	if tr.Ambient() != 42 {
		t.Fatalf("ambient = %d", tr.Ambient())
	}
}

func TestCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("retry.attempts").Add(3)
	r.Counter("retry.attempts").Inc()
	if got := r.Counter("retry.attempts").Value(); got != 4 {
		t.Fatalf("counter = %d", got)
	}

	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean < 50 || s.Mean > 51 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.P50 < 45 || s.P50 > 55 || s.P99 < 95 {
		t.Fatalf("quantiles = p50 %v p99 %v", s.P50, s.P99)
	}

	// Nil registry and nil metrics are inert.
	var nr *Registry
	nr.Counter("x").Inc()
	nr.Histogram("y").Observe(1)
	if nr.Counter("x").Value() != 0 || nr.Histogram("y").Count() != 0 {
		t.Fatal("nil registry should no-op")
	}
	snap := nr.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestHistogramDecimationKeepsSummaryExact(t *testing.T) {
	h := &Histogram{}
	n := maxSamples*4 + 17
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.Count != int64(n) {
		t.Fatalf("count = %d want %d", s.Count, n)
	}
	if s.Min != 0 || s.Max != float64(n-1) {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Quantiles are estimates after decimation but should stay in band.
	if s.P50 < float64(n)*0.4 || s.P50 > float64(n)*0.6 {
		t.Fatalf("p50 = %v out of band for n=%d", s.P50, n)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	if r.Histogram("h").Count() != 8000 {
		t.Fatalf("hist count = %d", r.Histogram("h").Count())
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr := NewTracer(jw)
	tr.SetClock(func() time.Time { return fixed })

	root := tr.Start(0, KindInstance, "Figure6")
	root.Stack = "WF"
	child := tr.Start(root.SpanID(), KindSQL, "UPDATE")
	child.End(OutcomeOK)
	root.End(OutcomeOK)
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	// Child ends first (JSONL is end-ordered).
	if lines[0]["kind"] != "sql" || lines[1]["kind"] != "instance" {
		t.Fatalf("order: %v then %v", lines[0]["kind"], lines[1]["kind"])
	}
	if lines[1]["stack"] != "WF" {
		t.Fatalf("stack label missing: %v", lines[1])
	}
	if lines[0]["parent"] != lines[1]["id"] {
		t.Fatalf("parent linkage broken: %v vs %v", lines[0]["parent"], lines[1]["id"])
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("journal.appends").Add(12)
	r.Histogram("sqldb.exec").ObserveDuration(3 * time.Millisecond)
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["journal.appends"] != 12 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Histograms["sqldb.exec"].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
}
