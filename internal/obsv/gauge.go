package obsv

import (
	"math"
	"sync/atomic"
)

// Gauge is a point-in-time instrument: unlike a Counter it can go down
// (queue depth, concurrency limit, brownout on/off). It additionally
// tracks the high-water mark since creation, which is what the overload
// invariants assert ("queue depth never exceeded its bound"). Nil-safe,
// like the other instruments.
type Gauge struct {
	bits atomic.Uint64 // float64 bits of the current value
	high atomic.Uint64 // float64 bits of the max ever Set
}

// Set replaces the gauge value and advances the high-water mark.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	for {
		old := g.high.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.high.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetInt is Set for integer-valued gauges.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// SetBool sets 1 for true, 0 for false (state gauges like
// brownout.active).
func (g *Gauge) SetBool(b bool) {
	if b {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// High returns the high-water mark (the maximum value ever Set).
func (g *Gauge) High() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.high.Load())
}

// GaugeSummary is the snapshot form of a gauge.
type GaugeSummary struct {
	Value float64 `json:"value"`
	High  float64 `json:"high"`
}

// Gauge returns (creating if absent) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}
