package obsv

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. Nil-safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// maxSamples caps the reservoir a histogram keeps for quantile
// estimation. All observations still count toward Count/Sum/Min/Max;
// beyond the cap the reservoir decimates deterministically (keep every
// other slot), which is adequate for the bench summaries.
const maxSamples = 4096

// Histogram records latency (or size) observations and summarizes them
// as count/sum/min/max plus estimated quantiles. Nil-safe.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	stride  int64 // record every stride-th observation once decimating
	seen    int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.stride == 0 {
		h.stride = 1
	}
	h.seen++
	if h.seen%h.stride == 0 {
		h.samples = append(h.samples, v)
		if len(h.samples) >= maxSamples {
			// Decimate: keep every other sample, double the stride.
			kept := h.samples[:0]
			for i := 0; i < len(h.samples); i += 2 {
				kept = append(kept, h.samples[i])
			}
			h.samples = kept
			h.stride *= 2
		}
	}
}

// ObserveDuration records d in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistogramSummary is a point-in-time summary of a histogram. Values are
// in the unit observed (milliseconds for ObserveDuration).
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary computes the current summary.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	if len(h.samples) > 0 {
		sorted := make([]float64, len(h.samples))
		copy(sorted, h.samples)
		sort.Float64s(sorted)
		s.P50 = quantile(sorted, 0.50)
		s.P90 = quantile(sorted, 0.90)
		s.P99 = quantile(sorted, 0.99)
	}
	return s
}

// quantile returns the q-th quantile of sorted (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Registry is a named collection of counters and histograms. Metric
// names are dot-separated, optionally with .<label> suffixes chosen by
// the call site (e.g. "retry.attempts.OrderFromSupplier"). Lookup
// creates on first use. A nil *Registry is safe: it hands out nil
// counters/histograms whose methods no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
	gauges     map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating if absent) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating if absent) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of every metric in a registry, with
// deterministically ordered keys (sorted maps serialize sorted in Go's
// encoding/json).
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Histograms map[string]HistogramSummary `json:"histograms"`
	Gauges     map[string]GaugeSummary     `json:"gauges,omitempty"`
}

// Snapshot captures all current metric values.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSummary{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Summary()
	}
	if len(gauges) > 0 {
		snap.Gauges = map[string]GaugeSummary{}
		for k, g := range gauges {
			snap.Gauges[k] = GaugeSummary{Value: g.Value(), High: g.High()}
		}
	}
	return snap
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
