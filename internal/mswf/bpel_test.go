package mswf

import (
	"strings"
	"testing"

	"wfsql/internal/dataset"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

// TestBPELExportImportRoundTrip exports the markup-authored Figure 6
// workflow to BPEL, imports it back, and runs the imported tree — the
// paper's "import and export tools for BPEL" for WF.
func TestBPELExportImportRoundTrip(t *testing.T) {
	wf := MustLoadXOML(figure6XOML)
	bpel, err := ExportBPEL("Figure6", wf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<process", `name="Figure6"`, "<sequence", "<while",
		"urn:wfsql:rule", "HasMoreItems", "<invoke", `operation="OrderFromSupplier"`,
		"wf:sqlDatabase", "toPart", "fromPart", "wf:parameter",
	} {
		if !strings.Contains(bpel, want) {
			t.Errorf("exported BPEL missing %q:\n%s", want, bpel)
		}
	}

	imported, err := ImportBPEL(bpel)
	if err != nil {
		t.Fatal(err)
	}

	// The imported workflow must execute with the same effects.
	db := ordersDB()
	rt := newRuntime(db)
	svc := wsbus.NewOrderFromSupplier(0)
	rt.RegisterService("OrderFromSupplier", func(req map[string]string) (map[string]string, error) {
		return svc.Handle(req)
	})
	rt.RegisterHandler("BindNext", func(c *Context) error {
		ds := c.vars["SV_ItemList"].(*dataset.DataSet)
		i, _ := c.GetInt("Index")
		row, err := ds.Table("Result").Row(int(i))
		if err != nil {
			return err
		}
		c.Set("CurrentItemID", row.MustGet("ItemID").S)
		c.Set("CurrentItemQuantity", row.MustGet("ItemQuantity").I)
		c.Set("Index", i+1)
		return nil
	})
	rt.RegisterRule("HasMoreItems", func(c *Context) (bool, error) {
		ds, ok := c.Get("SV_ItemList")
		if !ok {
			return false, nil
		}
		i, _ := c.GetInt("Index")
		return int(i) < ds.(*dataset.DataSet).Table("Result").Count(), nil
	})
	if _, err := rt.Run(imported, map[string]any{"Index": 0}); err != nil {
		t.Fatal(err)
	}
	if n := db.MustExec("SELECT COUNT(*) FROM OrderConfirmations").Rows[0][0].I; n != 3 {
		t.Fatalf("imported workflow confirmations: %d", n)
	}

	// Double round trip is stable.
	bpel2, err := ExportBPEL("Figure6", imported)
	if err != nil {
		t.Fatal(err)
	}
	if bpel != bpel2 {
		t.Fatalf("export not stable:\n--- first ---\n%s\n--- second ---\n%s", bpel, bpel2)
	}
}

func TestBPELExportRejectsInlineCode(t *testing.T) {
	inline := NewSequence("s", NewCode("c", func(*Context) error { return nil }))
	if _, err := ExportBPEL("p", inline); err == nil {
		t.Fatal("inline handler must not be exportable")
	}
	codeCond := NewWhile("w", func(*Context) (bool, error) { return false, nil },
		&TerminateActivity{ActivityName: "t"})
	if _, err := ExportBPEL("p", codeCond); err == nil {
		t.Fatal("code-only condition must not be exportable")
	}
}

func TestBPELImportPlainBPEL(t *testing.T) {
	// BPEL produced by another tool: plain elements, no wf: extensions.
	doc := `
	<process name="other">
	  <sequence name="main">
	    <empty name="noop"/>
	    <if name="check">
	      <condition expressionLanguage="urn:wfsql:rule">IsHigh</condition>
	      <exit name="stop" wf:reason="too high"/>
	      <else>
	        <empty name="ok"/>
	      </else>
	    </if>
	  </sequence>
	</process>`
	wf, err := ImportBPEL(doc)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	rt.RegisterRule("IsHigh", func(c *Context) (bool, error) {
		i, _ := c.GetInt("x")
		return i > 10, nil
	})
	if _, err := rt.Run(wf, map[string]any{"x": 1}); err != nil {
		t.Fatalf("low path: %v", err)
	}
	if _, err := rt.Run(wf, map[string]any{"x": 99}); err == nil || !strings.Contains(err.Error(), "too high") {
		t.Fatalf("high path: %v", err)
	}
}

func TestBPELImportErrors(t *testing.T) {
	bad := []string{
		"not xml",
		"<notprocess/>",
		"<process/>",
		"<process><sequence/><sequence/></process>",
		"<process><while name='w'><empty/></while></process>",
		"<process><unknownElement/></process>",
		"<process><invoke name='i'/></process>",
		"<process><extensionActivity/></process>",
		"<process><extensionActivity><wf:code/></extensionActivity></process>",
		"<process><extensionActivity><wf:sqlDatabase name='s'/></extensionActivity></process>",
		"<process><if name='i'><empty/></if></process>",
	}
	for _, doc := range bad {
		if _, err := ImportBPEL(doc); err == nil {
			t.Errorf("ImportBPEL(%q): expected error", doc)
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	db := ordersDB()
	rt := newRuntime(db)

	// Run the first half of a workflow, dehydrate, rehydrate, continue.
	fill := NewSQLDatabase("fill", conn,
		"SELECT OrderID, ItemID, Quantity FROM Orders ORDER BY OrderID").
		Into("cache").Keys("OrderID")
	c1, err := rt.Run(fill, map[string]any{"phase": "one", "count": int64(2), "ratio": 1.5, "flag": true})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the cache so change tracking must survive persistence.
	ds := c1.vars["cache"].(*dataset.DataSet)
	row, _ := ds.Table("Result").Find(sqldb.Int(1))
	row.Set("Quantity", sqldb.Int(42))
	victim, _ := ds.Table("Result").Find(sqldb.Int(2))
	victim.Delete()
	ds.Table("Result").AddRow(sqldb.Int(77), sqldb.Str("washer"), sqldb.Int(9))

	state := SaveState(c1)
	if !strings.Contains(state, "workflowState") || !strings.Contains(state, "dataSet") {
		t.Fatalf("state: %s", state)
	}

	c2, err := rt.LoadState(state)
	if err != nil {
		t.Fatal(err)
	}
	if c2.GetString("phase") != "one" {
		t.Fatalf("string var: %q", c2.GetString("phase"))
	}
	if n, _ := c2.GetInt("count"); n != 2 {
		t.Fatalf("int var: %d", n)
	}
	if v, _ := c2.Get("ratio"); v.(float64) != 1.5 {
		t.Fatalf("float var: %v", v)
	}
	if v, _ := c2.Get("flag"); v.(bool) != true {
		t.Fatalf("bool var: %v", v)
	}
	ds2 := c2.vars["cache"].(*dataset.DataSet)
	tab := ds2.Table("Result")
	if tab.Count() != 6 { // 6 live rows: 5 original (one deleted) + 1 added
		t.Fatalf("live rows after restore: %d", tab.Count())
	}
	added, modified, deleted := tab.Changes()
	if len(added) != 1 || len(modified) != 1 || len(deleted) != 1 {
		t.Fatalf("change tracking after restore: a=%d m=%d d=%d", len(added), len(modified), len(deleted))
	}
	r, _ := tab.Find(sqldb.Int(1))
	if r.MustGet("Quantity").I != 42 {
		t.Fatalf("modified value after restore: %v", r.MustGet("Quantity"))
	}
}

func TestLoadStateErrors(t *testing.T) {
	rt := NewRuntime()
	bad := []string{
		"nope",
		"<wrongRoot/>",
		`<workflowState><variable name="x" type="int">abc</variable></workflowState>`,
		`<workflowState><variable name="x" type="weird">1</variable></workflowState>`,
		`<workflowState><variable name="x" type="dataset"/></workflowState>`,
	}
	for _, s := range bad {
		if _, err := rt.LoadState(s); err == nil {
			t.Errorf("LoadState(%q): expected error", s)
		}
	}
}
