package mswf_test

import (
	"fmt"

	"wfsql/internal/dataset"
	"wfsql/internal/mswf"
	"wfsql/internal/sqldb"
)

// Example shows the WF style: a customized SQL database activity against
// a static connection string, with the query result automatically
// materialized into a DataSet host variable.
func Example() {
	db := sqldb.Open("orders")
	db.MustExec("CREATE TABLE Orders (ItemID VARCHAR, Quantity INTEGER)")
	db.MustExec("INSERT INTO Orders VALUES ('bolt', 10), ('nut', 3)")

	rt := mswf.NewRuntime()
	rt.RegisterDatabase("orders", mswf.SQLServer, db)

	wf := mswf.NewSequence("main",
		mswf.NewSQLDatabase("query", "Provider=SqlServer;Data Source=orders",
			"SELECT ItemID, Quantity FROM Orders WHERE Quantity >= @min ORDER BY ItemID").
			Param("@min", "minQty").
			Into("result"),
		mswf.NewCode("print", func(c *mswf.Context) error {
			v, _ := c.Get("result")
			tab := v.(*dataset.DataSet).Table("Result")
			for _, row := range tab.Rows() {
				fmt.Printf("%s=%s\n", row.MustGet("ItemID"), row.MustGet("Quantity"))
			}
			return nil
		}),
	)
	rt.Run(wf, map[string]any{"minQty": 5})
	// Output: bolt=10
}

// Example_markup loads the same structure from XOML markup — the
// markup-only authoring mode.
func Example_markup() {
	db := sqldb.Open("orders")
	db.MustExec("CREATE TABLE Orders (ItemID VARCHAR)")
	db.MustExec("INSERT INTO Orders VALUES ('bolt')")

	rt := mswf.NewRuntime()
	rt.RegisterDatabase("orders", mswf.SQLServer, db)
	rt.RegisterHandler("Print", func(c *mswf.Context) error {
		v, _ := c.Get("out")
		fmt.Println("rows:", v.(*dataset.DataSet).Table("Result").Count())
		return nil
	})

	wf := mswf.MustLoadXOML(`
		<SequenceActivity x:Name="main">
		  <SQLDatabaseActivity x:Name="q"
		      ConnectionString="Provider=SqlServer;Data Source=orders"
		      Statement="SELECT ItemID FROM Orders" ResultSet="out"/>
		  <CodeActivity x:Name="print" Handler="Print"/>
		</SequenceActivity>`)
	rt.Run(wf, nil)
	// Output: rows: 1
}
