package mswf

import (
	"fmt"
	"strings"
	"testing"

	"wfsql/internal/dataset"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

func ordersDB() *sqldb.DB {
	db := sqldb.Open("orderdb")
	db.MustExec(`CREATE TABLE Orders (
		OrderID INTEGER PRIMARY KEY, ItemID VARCHAR NOT NULL,
		Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL)`)
	db.MustExec(`INSERT INTO Orders VALUES
		(1, 'bolt', 10, TRUE), (2, 'bolt', 5, TRUE), (3, 'nut', 7, FALSE),
		(4, 'nut', 3, TRUE), (5, 'screw', 2, TRUE), (6, 'screw', 9, FALSE)`)
	db.MustExec(`CREATE TABLE OrderConfirmations (
		ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR)`)
	return db
}

const conn = "Provider=SqlServer;Data Source=orderdb"

func newRuntime(db *sqldb.DB) *Runtime {
	rt := NewRuntime()
	rt.RegisterDatabase("orderdb", SQLServer, db)
	return rt
}

func TestSequenceAndCode(t *testing.T) {
	rt := NewRuntime()
	var order []string
	mk := func(n string) Activity {
		return NewCode(n, func(c *Context) error {
			order = append(order, n)
			return nil
		})
	}
	if _, err := rt.Run(NewSequence("main", mk("a"), mk("b")), nil); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,b" {
		t.Fatalf("order: %v", order)
	}
}

func TestSQLDatabaseActivityQueryMaterializes(t *testing.T) {
	db := ordersDB()
	rt := newRuntime(db)
	act := NewSQLDatabase("SQLDatabase1", conn,
		`SELECT ItemID, SUM(Quantity) AS ItemQuantity FROM Orders
		 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`).
		Into("SV_ItemList").Keys("ItemID")
	c, err := rt.Run(act, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get("SV_ItemList")
	if !ok {
		t.Fatal("result host variable missing")
	}
	ds := v.(*dataset.DataSet)
	tab := ds.Table("Result")
	if tab.Count() != 3 {
		t.Fatalf("materialized rows: %d", tab.Count())
	}
	r, _ := tab.Find(sqldb.Str("bolt"))
	if r.MustGet("ItemQuantity").I != 15 {
		t.Fatalf("bolt quantity: %v", r.MustGet("ItemQuantity"))
	}
}

func TestSQLDatabaseActivityDMLAndParameters(t *testing.T) {
	db := ordersDB()
	rt := newRuntime(db)
	act := NewSQLDatabase("del", conn,
		"DELETE FROM Orders WHERE ItemID = @item AND Quantity >= @q").
		Param("@item", "item").Param("@q", "minQty")
	act.RowsAffectedVar = "n"
	c, err := rt.Run(act, map[string]any{"item": "bolt", "minQty": 5})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := c.GetInt("n"); n != 2 {
		t.Fatalf("rows affected: %d", n)
	}
}

func TestSQLDatabaseActivityDDLAndStoredProcedure(t *testing.T) {
	db := ordersDB()
	rt := newRuntime(db)
	// Data Setup Pattern: DDL from the activity.
	if _, err := rt.Run(NewSQLDatabase("ddl", conn,
		"CREATE TABLE Audit (msg VARCHAR)"), nil); err != nil {
		t.Fatal(err)
	}
	if !db.HasTable("Audit") {
		t.Fatal("DDL did not run")
	}
	// Stored Procedure Pattern.
	db.MustExec(`CREATE PROCEDURE totals () AS
		'SELECT ItemID, SUM(Quantity) AS Total FROM Orders GROUP BY ItemID'`)
	c, err := rt.Run(NewSQLDatabase("call", conn, "CALL totals()").Into("out"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := c.vars["out"].(*dataset.DataSet)
	if ds.Table("Result").Count() != 3 {
		t.Fatalf("procedure result rows: %d", ds.Table("Result").Count())
	}
}

func TestEventHandlers(t *testing.T) {
	db := ordersDB()
	rt := newRuntime(db)
	act := NewSQLDatabase("withHandlers", conn,
		"DELETE FROM Orders WHERE ItemID = @item").
		Param("@item", "item")
	var sequence []string
	act.BeforeExecute = func(c *Context) error {
		// Initialize the parameter value before the statement runs.
		c.Set("item", "nut")
		sequence = append(sequence, "before")
		return nil
	}
	act.AfterExecute = func(c *Context) error {
		sequence = append(sequence, "after")
		return nil
	}
	if _, err := rt.Run(act, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Join(sequence, ",") != "before,after" {
		t.Fatalf("handler order: %v", sequence)
	}
	if n := db.MustExec("SELECT COUNT(*) FROM Orders WHERE ItemID = 'nut'").Rows[0][0].I; n != 0 {
		t.Fatal("before-handler parameter did not apply")
	}
}

func TestProviderRestriction(t *testing.T) {
	db := sqldb.Open("pg")
	db.MustExec("CREATE TABLE t (x INTEGER)")
	rt := NewRuntime()
	rt.RegisterDatabase("pg", Provider("Postgres"), db)
	_, err := rt.Run(NewSQLDatabase("q", "Provider=Postgres;Data Source=pg", "SELECT x FROM t").Into("r"), nil)
	if err == nil || !strings.Contains(err.Error(), "SqlServer and Oracle") {
		t.Fatalf("expected provider restriction, got %v", err)
	}
	// Mismatched provider in the connection string is also rejected.
	rt2 := newRuntime(ordersDB())
	_, err = rt2.Run(NewSQLDatabase("q", "Provider=Oracle;Data Source=orderdb", "SELECT 1").Into("r"), nil)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("expected provider mismatch, got %v", err)
	}
}

func TestUnknownDataSource(t *testing.T) {
	rt := NewRuntime()
	if _, err := rt.Run(NewSQLDatabase("q", "Data Source=nope", "SELECT 1").Into("r"), nil); err == nil {
		t.Fatal("expected unknown data source error")
	}
	if _, err := rt.Run(NewSQLDatabase("q", "Provider=SqlServer", "SELECT 1").Into("r"), nil); err == nil {
		t.Fatal("expected missing data source error")
	}
}

// figure6Workflow builds the paper's Figure 6 workflow in the code-only
// authoring mode.
func figure6Workflow(svc *wsbus.OrderFromSupplierService) Activity {
	sqlDatabase1 := NewSQLDatabase("SQLDatabase1", conn,
		`SELECT ItemID, SUM(Quantity) AS ItemQuantity FROM Orders
		 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`).
		Into("SV_ItemList").Keys("ItemID")

	bindNext := NewCode("bindNext", func(c *Context) error {
		ds := c.vars["SV_ItemList"].(*dataset.DataSet)
		i, _ := c.GetInt("Index")
		row, err := ds.Table("Result").Row(int(i))
		if err != nil {
			return err
		}
		// CurrentItem["ItemID"], CurrentItem["ItemQuantity"] in ADO.NET terms.
		c.Set("CurrentItemID", row.MustGet("ItemID").S)
		c.Set("CurrentItemQuantity", row.MustGet("ItemQuantity").I)
		c.Set("Index", i+1)
		return nil
	})

	invoke := &InvokeWebServiceActivity{
		ActivityName: "invoke",
		Service:      func(req map[string]string) (map[string]string, error) { return svc.Handle(req) },
		Inputs:       map[string]string{"ItemID": "CurrentItemID", "Quantity": "CurrentItemQuantity"},
		Outputs:      map[string]string{"OrderConfirmation": "OrderConfirmation"},
	}

	sqlDatabase2 := NewSQLDatabase("SQLDatabase2", conn,
		`INSERT INTO OrderConfirmations (ItemID, Quantity, Confirmation)
		 VALUES (@item, @qty, @conf)`).
		Param("@item", "CurrentItemID").
		Param("@qty", "CurrentItemQuantity").
		Param("@conf", "OrderConfirmation")

	hasMore := func(c *Context) (bool, error) {
		ds, ok := c.Get("SV_ItemList")
		if !ok {
			return false, nil
		}
		i, _ := c.GetInt("Index")
		return int(i) < ds.(*dataset.DataSet).Table("Result").Count(), nil
	}

	return NewSequence("main",
		sqlDatabase1,
		NewWhile("while", hasMore,
			NewSequence("body", bindNext, invoke, sqlDatabase2)),
	)
}

// TestFigure6Workflow reproduces the paper's Figure 6 sample workflow on
// the WF stack and checks behavioural equivalence with the BIS version.
func TestFigure6Workflow(t *testing.T) {
	db := ordersDB()
	rt := newRuntime(db)
	svc := wsbus.NewOrderFromSupplier(0)
	if _, err := rt.Run(figure6Workflow(svc), map[string]any{"Index": 0}); err != nil {
		t.Fatal(err)
	}
	r := db.MustExec("SELECT ItemID, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemID")
	if len(r.Rows) != 3 {
		t.Fatalf("confirmations: %d", len(r.Rows))
	}
	wants := map[string]int64{"bolt": 15, "nut": 3, "screw": 2}
	for _, row := range r.Rows {
		item := row[0].S
		if row[1].I != wants[item] {
			t.Errorf("%s quantity: %d", item, row[1].I)
		}
		if row[2].S != fmt.Sprintf("CONFIRMED:%s:%d", item, wants[item]) {
			t.Errorf("%s confirmation: %q", item, row[2].S)
		}
	}
}

func TestTrackingService(t *testing.T) {
	db := ordersDB()
	rt := newRuntime(db)
	svc := wsbus.NewOrderFromSupplier(0)
	c, err := rt.Run(figure6Workflow(svc), map[string]any{"Index": 0})
	if err != nil {
		t.Fatal(err)
	}
	events := c.Events()
	var closed int
	for _, ev := range events {
		if ev.Activity == "SQLDatabase2" && ev.Status == "Closed" {
			closed++
		}
	}
	if closed != 3 {
		t.Fatalf("SQLDatabase2 closed events: %d", closed)
	}
}

func TestCodeActivityADOWorkarounds(t *testing.T) {
	// The paper: in WF, Random Set Access, Tuple IUD and Synchronization
	// are only possible through code activities using the ADO.NET API.
	db := ordersDB()
	rt := newRuntime(db)
	wf := NewSequence("main",
		NewSQLDatabase("fill", conn,
			"SELECT OrderID, ItemID, Quantity, Approved FROM Orders ORDER BY OrderID").
			Into("cache").Keys("OrderID"),
		NewCode("mutate", func(c *Context) error {
			tab := c.vars["cache"].(*dataset.DataSet).Table("Result")
			// Random access by key.
			row, err := tab.Find(sqldb.Int(4))
			if err != nil || row == nil {
				return fmt.Errorf("find: %v %v", row, err)
			}
			// Tuple update, insert, delete on the cache.
			row.Set("Quantity", sqldb.Int(42))
			tab.AddRow(sqldb.Int(99), sqldb.Str("washer"), sqldb.Int(1), sqldb.Bool(true))
			victim, _ := tab.Find(sqldb.Int(6))
			victim.Delete()
			return nil
		}),
		NewCode("synchronize", func(c *Context) error {
			ds := c.vars["cache"].(*dataset.DataSet)
			adapter, err := NewDataAdapter(c, conn,
				"SELECT OrderID, ItemID, Quantity, Approved FROM Orders", "Orders", "OrderID")
			if err != nil {
				return err
			}
			n, err := adapter.Update(ds, "Result")
			if err != nil {
				return err
			}
			c.Set("synced", int64(n))
			return nil
		}),
	)
	c, err := rt.Run(wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := c.GetInt("synced"); n != 3 {
		t.Fatalf("synced rows: %d", n)
	}
	if q := db.MustExec("SELECT Quantity FROM Orders WHERE OrderID = 4").Rows[0][0].I; q != 42 {
		t.Fatalf("update not synchronized: %d", q)
	}
	if n := db.MustExec("SELECT COUNT(*) FROM Orders WHERE OrderID = 6").Rows[0][0].I; n != 0 {
		t.Fatal("delete not synchronized")
	}
	if n := db.MustExec("SELECT COUNT(*) FROM Orders WHERE OrderID = 99").Rows[0][0].I; n != 1 {
		t.Fatal("insert not synchronized")
	}
}

func TestIfElse(t *testing.T) {
	rt := NewRuntime()
	wf := &IfElseActivity{ActivityName: "if", Branches: []IfElseBranch{
		{Condition: func(c *Context) (bool, error) { return c.GetString("x") == "a", nil },
			Body: NewCode("then", func(c *Context) error { c.Set("out", "A"); return nil })},
		{Body: NewCode("else", func(c *Context) error { c.Set("out", "other"); return nil })},
	}}
	c, _ := rt.Run(wf, map[string]any{"x": "a"})
	if c.GetString("out") != "A" {
		t.Fatal("then branch not taken")
	}
	c, _ = rt.Run(wf, map[string]any{"x": "z"})
	if c.GetString("out") != "other" {
		t.Fatal("else branch not taken")
	}
}

func TestParallel(t *testing.T) {
	rt := NewRuntime()
	wf := &ParallelActivity{ActivityName: "par", Children: []Activity{
		NewCode("a", func(c *Context) error { c.Set("a", 1); return nil }),
		NewCode("b", func(c *Context) error { c.Set("b", 1); return nil }),
	}}
	c, err := rt.Run(wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("branch a missing")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("branch b missing")
	}
}

func TestTerminate(t *testing.T) {
	rt := NewRuntime()
	_, err := rt.Run(&TerminateActivity{ActivityName: "stop", Reason: "bad input"}, nil)
	if err == nil || !strings.Contains(err.Error(), "bad input") {
		t.Fatalf("terminate: %v", err)
	}
}

const figure6XOML = `
<SequenceActivity x:Name="main">
  <SQLDatabaseActivity x:Name="SQLDatabase1"
      ConnectionString="Provider=SqlServer;Data Source=orderdb"
      Statement="SELECT ItemID, SUM(Quantity) AS ItemQuantity FROM Orders WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID"
      ResultSet="SV_ItemList" Keys="ItemID"/>
  <WhileActivity x:Name="while" Condition="rule:HasMoreItems">
    <SequenceActivity x:Name="body">
      <CodeActivity x:Name="bindNext" Handler="BindNext"/>
      <InvokeWebServiceActivity x:Name="invoke" Service="OrderFromSupplier">
        <Input Part="ItemID" Variable="CurrentItemID"/>
        <Input Part="Quantity" Variable="CurrentItemQuantity"/>
        <Output Part="OrderConfirmation" Variable="OrderConfirmation"/>
      </InvokeWebServiceActivity>
      <SQLDatabaseActivity x:Name="SQLDatabase2"
          ConnectionString="Provider=SqlServer;Data Source=orderdb"
          Statement="INSERT INTO OrderConfirmations (ItemID, Quantity, Confirmation) VALUES (@item, @qty, @conf)">
        <Parameter Name="@item" Variable="CurrentItemID"/>
        <Parameter Name="@qty" Variable="CurrentItemQuantity"/>
        <Parameter Name="@conf" Variable="OrderConfirmation"/>
      </SQLDatabaseActivity>
    </SequenceActivity>
  </WhileActivity>
</SequenceActivity>`

// TestFigure6XOML runs the same workflow loaded from markup
// (code-separation authoring: structure in XOML, handlers in code).
func TestFigure6XOML(t *testing.T) {
	db := ordersDB()
	rt := newRuntime(db)
	svc := wsbus.NewOrderFromSupplier(0)
	rt.RegisterService("OrderFromSupplier", func(req map[string]string) (map[string]string, error) {
		return svc.Handle(req)
	})
	rt.RegisterHandler("BindNext", func(c *Context) error {
		ds := c.vars["SV_ItemList"].(*dataset.DataSet)
		i, _ := c.GetInt("Index")
		row, err := ds.Table("Result").Row(int(i))
		if err != nil {
			return err
		}
		c.Set("CurrentItemID", row.MustGet("ItemID").S)
		c.Set("CurrentItemQuantity", row.MustGet("ItemQuantity").I)
		c.Set("Index", i+1)
		return nil
	})
	rt.RegisterRule("HasMoreItems", func(c *Context) (bool, error) {
		ds, ok := c.Get("SV_ItemList")
		if !ok {
			return false, nil
		}
		i, _ := c.GetInt("Index")
		return int(i) < ds.(*dataset.DataSet).Table("Result").Count(), nil
	})

	wf, err := LoadXOML(figure6XOML)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(wf, map[string]any{"Index": 0}); err != nil {
		t.Fatal(err)
	}
	r := db.MustExec("SELECT COUNT(*) FROM OrderConfirmations")
	if r.Rows[0][0].I != 3 {
		t.Fatalf("confirmations via XOML: %v", r.Rows[0][0])
	}
}

func TestXOMLErrors(t *testing.T) {
	bad := []string{
		`<UnknownActivity/>`,
		`<CodeActivity x:Name="c"/>`,
		`<WhileActivity x:Name="w" Condition="rule:R"/>`,
		`<WhileActivity x:Name="w" Condition="notrule"><CodeActivity Handler="h"/></WhileActivity>`,
		`<SQLDatabaseActivity x:Name="s"/>`,
		`<IfElseActivity x:Name="i"/>`,
		`<InvokeWebServiceActivity x:Name="v"/>`,
		`not xml at all`,
	}
	for _, m := range bad {
		if _, err := LoadXOML(m); err == nil {
			t.Errorf("LoadXOML(%q): expected error", m)
		}
	}
}

func TestXOMLMissingHandlerFailsAtRuntime(t *testing.T) {
	rt := NewRuntime()
	wf := MustLoadXOML(`<CodeActivity x:Name="c" Handler="Nope"/>`)
	if _, err := rt.Run(wf, nil); err == nil {
		t.Fatal("expected missing handler error")
	}
}

func TestToSQLValueKinds(t *testing.T) {
	cases := []struct {
		in   any
		kind sqldb.Kind
	}{
		{nil, sqldb.KindNull},
		{sqldb.Int(1), sqldb.KindInt},
		{3, sqldb.KindInt},
		{int64(4), sqldb.KindInt},
		{2.5, sqldb.KindFloat},
		{true, sqldb.KindBool},
		{"s", sqldb.KindString},
		{struct{ X int }{1}, sqldb.KindString}, // fallback formatting
	}
	for _, c := range cases {
		if got := toSQLValue(c.in).K; got != c.kind {
			t.Errorf("toSQLValue(%v) kind = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestGetIntForms(t *testing.T) {
	c := &Context{Runtime: NewRuntime(), vars: map[string]any{
		"i": 7, "i64": int64(8), "sql": sqldb.Int(9), "str": "10", "bad": "xyz",
	}}
	for name, want := range map[string]int64{"i": 7, "i64": 8, "sql": 9, "str": 10} {
		if got, err := c.GetInt(name); err != nil || got != want {
			t.Errorf("GetInt(%s) = %d, %v", name, got, err)
		}
	}
	if _, err := c.GetInt("bad"); err == nil {
		t.Error("GetInt on non-numeric string must error")
	}
	if _, err := c.GetInt("missing"); err == nil {
		t.Error("GetInt on missing var must error")
	}
}

func TestPersistSQLValueKinds(t *testing.T) {
	rt := NewRuntime()
	c := &Context{Runtime: rt, vars: map[string]any{
		"n":  sqldb.Null(),
		"i":  sqldb.Int(4),
		"f":  sqldb.Float(2.5),
		"b":  sqldb.Bool(true),
		"s":  sqldb.Str("x"),
		"fl": 1.25,
	}}
	state := SaveState(c)
	c2, err := rt.LoadState(state)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c2.Get("i"); v.(sqldb.Value).I != 4 {
		t.Fatalf("int sql value: %v", v)
	}
	if v, _ := c2.Get("f"); v.(sqldb.Value).F != 2.5 {
		t.Fatalf("float sql value: %v", v)
	}
	if v, _ := c2.Get("b"); !v.(sqldb.Value).B {
		t.Fatalf("bool sql value: %v", v)
	}
	if v, _ := c2.Get("n"); !v.(sqldb.Value).IsNull() {
		t.Fatalf("null sql value: %v", v)
	}
	if v, _ := c2.Get("fl"); v.(float64) != 1.25 {
		t.Fatalf("float var: %v", v)
	}
}

func TestExportBPELTerminateAndParallel(t *testing.T) {
	wf := &ParallelActivity{ActivityName: "par", Children: []Activity{
		&TerminateActivity{ActivityName: "stop", Reason: "because"},
		&CodeActivity{ActivityName: "c", HandlerName: "H"},
	}}
	doc, err := ExportBPEL("p", wf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<flow", "<exit", `wf:reason="because"`, "wf:code"} {
		if !strings.Contains(doc, want) {
			t.Errorf("missing %q:\n%s", want, doc)
		}
	}
	imported, err := ImportBPEL(doc)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	if _, err := rt.Run(imported, nil); err == nil || !strings.Contains(err.Error(), "because") {
		t.Fatalf("imported terminate: %v", err)
	}
}
