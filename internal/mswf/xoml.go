package mswf

import (
	"fmt"
	"strings"

	"wfsql/internal/xdm"
)

// This file implements the markup-only and code-separation authoring
// modes: workflows described in XOML-style XML markup, loaded directly
// into the runtime engine. Code handlers, rule conditions, and services
// referenced from markup are resolved by name from the runtime — that
// combination of markup structure plus code implementations is the
// code-separation authoring style.
//
// Supported elements:
//
//	<SequenceActivity x:Name="...">children</SequenceActivity>
//	<ParallelActivity x:Name="...">children</ParallelActivity>
//	<WhileActivity x:Name="..." Condition="rule:Name">body</WhileActivity>
//	<IfElseActivity x:Name="...">
//	    <IfElseBranch Condition="rule:Name">body</IfElseBranch>
//	    <IfElseBranch>else-body</IfElseBranch>
//	</IfElseActivity>
//	<CodeActivity x:Name="..." Handler="Name"/>
//	<TerminateActivity x:Name="..." Reason="..."/>
//	<InvokeWebServiceActivity x:Name="..." Service="Name">
//	    <Input Part="..." Variable="..."/>
//	    <Output Part="..." Variable="..."/>
//	</InvokeWebServiceActivity>
//	<SQLDatabaseActivity x:Name="..." ConnectionString="..."
//	        Statement="..." ResultSet="var" ResultTable="t"
//	        Keys="a,b" RowsAffected="var">
//	    <Parameter Name="@p" Variable="hostVar"/>
//	</SQLDatabaseActivity>

// LoadXOML parses a XOML document into an executable activity tree.
func LoadXOML(markup string) (Activity, error) {
	root, err := xdm.Parse(markup)
	if err != nil {
		return nil, fmt.Errorf("mswf: xoml: %w", err)
	}
	return buildActivity(root)
}

// MustLoadXOML parses markup, panicking on error (for fixtures).
func MustLoadXOML(markup string) Activity {
	a, err := LoadXOML(markup)
	if err != nil {
		panic(err)
	}
	return a
}

func activityName(el *xdm.Node) string {
	if v, ok := el.Attr("x:Name"); ok {
		return v
	}
	if v, ok := el.Attr("Name"); ok {
		return v
	}
	return strings.TrimSuffix(el.Name, "Activity")
}

func buildActivity(el *xdm.Node) (Activity, error) {
	name := activityName(el)
	switch localName(el.Name) {
	case "SequenceActivity":
		children, err := buildChildren(el)
		if err != nil {
			return nil, err
		}
		return &SequenceActivity{ActivityName: name, Children: children}, nil
	case "ParallelActivity":
		children, err := buildChildren(el)
		if err != nil {
			return nil, err
		}
		return &ParallelActivity{ActivityName: name, Children: children}, nil
	case "WhileActivity":
		cond, condName, err := buildCondition(el)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		body, err := buildSingleChild(el, name)
		if err != nil {
			return nil, err
		}
		return &WhileActivity{ActivityName: name, Condition: cond, ConditionName: condName, Body: body}, nil
	case "IfElseActivity":
		act := &IfElseActivity{ActivityName: name}
		for _, branchEl := range el.ChildElements() {
			if localName(branchEl.Name) != "IfElseBranch" {
				return nil, fmt.Errorf("mswf: xoml: %s may only contain IfElseBranch, got %s", name, branchEl.Name)
			}
			body, err := buildSingleChild(branchEl, name)
			if err != nil {
				return nil, err
			}
			var cond RuleCondition
			var condName string
			if _, ok := branchEl.Attr("Condition"); ok {
				cond, condName, err = buildCondition(branchEl)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", name, err)
				}
			}
			act.Branches = append(act.Branches, IfElseBranch{Condition: cond, ConditionName: condName, Body: body})
		}
		if len(act.Branches) == 0 {
			return nil, fmt.Errorf("mswf: xoml: %s has no branches", name)
		}
		return act, nil
	case "CodeActivity":
		handler, ok := el.Attr("Handler")
		if !ok {
			return nil, fmt.Errorf("mswf: xoml: CodeActivity %s needs a Handler attribute", name)
		}
		return &CodeActivity{ActivityName: name, HandlerName: handler}, nil
	case "TerminateActivity":
		reason, _ := el.Attr("Reason")
		return &TerminateActivity{ActivityName: name, Reason: reason}, nil
	case "InvokeWebServiceActivity":
		svc, ok := el.Attr("Service")
		if !ok {
			return nil, fmt.Errorf("mswf: xoml: InvokeWebServiceActivity %s needs a Service attribute", name)
		}
		act := &InvokeWebServiceActivity{ActivityName: name, ServiceName: svc,
			Inputs: map[string]string{}, Outputs: map[string]string{}}
		for _, io := range el.ChildElements() {
			part, _ := io.Attr("Part")
			variable, _ := io.Attr("Variable")
			if part == "" || variable == "" {
				return nil, fmt.Errorf("mswf: xoml: %s: Input/Output needs Part and Variable", name)
			}
			switch localName(io.Name) {
			case "Input":
				act.Inputs[part] = variable
			case "Output":
				act.Outputs[part] = variable
			default:
				return nil, fmt.Errorf("mswf: xoml: unexpected %s in %s", io.Name, name)
			}
		}
		return act, nil
	case "SQLDatabaseActivity":
		conn, ok := el.Attr("ConnectionString")
		if !ok {
			return nil, fmt.Errorf("mswf: xoml: SQLDatabaseActivity %s needs a ConnectionString", name)
		}
		stmt, ok := el.Attr("Statement")
		if !ok {
			return nil, fmt.Errorf("mswf: xoml: SQLDatabaseActivity %s needs a Statement", name)
		}
		act := NewSQLDatabase(name, conn, stmt)
		if v, ok := el.Attr("ResultSet"); ok {
			act.ResultSetVar = v
		}
		if v, ok := el.Attr("ResultTable"); ok {
			act.ResultTable = v
		}
		if v, ok := el.Attr("RowsAffected"); ok {
			act.RowsAffectedVar = v
		}
		if v, ok := el.Attr("Keys"); ok {
			for _, k := range strings.Split(v, ",") {
				act.KeyColumns = append(act.KeyColumns, strings.TrimSpace(k))
			}
		}
		for _, pe := range el.ChildElements() {
			if localName(pe.Name) != "Parameter" {
				return nil, fmt.Errorf("mswf: xoml: unexpected %s in %s", pe.Name, name)
			}
			pn, _ := pe.Attr("Name")
			pv, _ := pe.Attr("Variable")
			if pn == "" || pv == "" {
				return nil, fmt.Errorf("mswf: xoml: %s: Parameter needs Name and Variable", name)
			}
			act.Param(pn, pv)
		}
		return act, nil
	}
	return nil, fmt.Errorf("mswf: xoml: unknown activity element %s", el.Name)
}

func buildChildren(el *xdm.Node) ([]Activity, error) {
	var out []Activity
	for _, c := range el.ChildElements() {
		a, err := buildActivity(c)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func buildSingleChild(el *xdm.Node, name string) (Activity, error) {
	children, err := buildChildren(el)
	if err != nil {
		return nil, err
	}
	switch len(children) {
	case 0:
		return nil, fmt.Errorf("mswf: xoml: %s has no body", name)
	case 1:
		return children[0], nil
	default:
		return &SequenceActivity{ActivityName: name + "_body", Children: children}, nil
	}
}

// buildCondition resolves a Condition attribute: "rule:Name" defers to a
// runtime-registered rule (code-separation). It returns the rule name for
// export round-tripping.
func buildCondition(el *xdm.Node) (RuleCondition, string, error) {
	spec, ok := el.Attr("Condition")
	if !ok {
		return nil, "", fmt.Errorf("missing Condition attribute")
	}
	ruleName, ok := strings.CutPrefix(spec, "rule:")
	if !ok {
		return nil, "", fmt.Errorf("condition %q must use the rule:Name form", spec)
	}
	return func(c *Context) (bool, error) {
		r, err := c.Runtime.rule(ruleName)
		if err != nil {
			return false, err
		}
		return r(c)
	}, ruleName, nil
}

func localName(n string) string {
	if i := strings.LastIndex(n, ":"); i >= 0 {
		return n[i+1:]
	}
	return n
}
