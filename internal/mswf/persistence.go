package mswf

import (
	"fmt"
	"strconv"
	"strings"

	"wfsql/internal/dataset"
	"wfsql/internal/sqldb"
	"wfsql/internal/xdm"
)

// This file implements the persistence runtime service of Figure 5: the
// WF runtime "relies on a group of Runtime Services for, e.g., persisting
// a workflow's state". The service serializes the host-variable state of
// a workflow instance to XML and restores it, so a long-running workflow
// can be dehydrated between episodes. Supported variable types are the
// ones WF workflows in this reproduction use: strings, integers, floats,
// booleans, and DataSet objects (persisted with their change tracking).

// SaveState serializes the context's host variables to an XML document.
func SaveState(c *Context) string {
	root := xdm.NewElement("workflowState")
	for _, name := range c.VarNames() {
		v, _ := c.Get(name)
		el := root.Element("variable")
		el.SetAttr("name", name)
		switch t := v.(type) {
		case nil:
			el.SetAttr("type", "null")
		case string:
			el.SetAttr("type", "string")
			el.SetText(t)
		case int:
			el.SetAttr("type", "int")
			el.SetText(strconv.Itoa(t))
		case int64:
			el.SetAttr("type", "int")
			el.SetText(strconv.FormatInt(t, 10))
		case float64:
			el.SetAttr("type", "float")
			el.SetText(strconv.FormatFloat(t, 'g', -1, 64))
		case bool:
			el.SetAttr("type", "bool")
			el.SetText(strconv.FormatBool(t))
		case sqldb.Value:
			el.SetAttr("type", "sql:"+strings.ToLower(t.K.String()))
			el.SetText(t.String())
		case *dataset.DataSet:
			el.SetAttr("type", "dataset")
			el.AppendChild(persistDataSet(t))
		default:
			el.SetAttr("type", "string")
			el.SetText(fmt.Sprint(t))
		}
	}
	return root.String()
}

// LoadState restores host variables from a SaveState document into a
// fresh context on the runtime.
func (rt *Runtime) LoadState(state string) (*Context, error) {
	root, err := xdm.Parse(state)
	if err != nil {
		return nil, fmt.Errorf("mswf: persistence: %w", err)
	}
	if root.Name != "workflowState" {
		return nil, fmt.Errorf("mswf: persistence: unexpected root %s", root.Name)
	}
	c := &Context{Runtime: rt, vars: map[string]any{}}
	for _, el := range root.ChildElements() {
		name, _ := el.Attr("name")
		typ, _ := el.Attr("type")
		text := el.TextContent()
		switch {
		case typ == "null":
			c.vars[name] = nil
		case typ == "string":
			c.vars[name] = text
		case typ == "int":
			i, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mswf: persistence: variable %s: %w", name, err)
			}
			c.vars[name] = i
		case typ == "float":
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("mswf: persistence: variable %s: %w", name, err)
			}
			c.vars[name] = f
		case typ == "bool":
			b, err := strconv.ParseBool(text)
			if err != nil {
				return nil, fmt.Errorf("mswf: persistence: variable %s: %w", name, err)
			}
			c.vars[name] = b
		case strings.HasPrefix(typ, "sql:"):
			c.vars[name] = parseSQLValue(strings.TrimPrefix(typ, "sql:"), text)
		case typ == "dataset":
			inner := el.FirstChildElement("dataSet")
			if inner == nil {
				return nil, fmt.Errorf("mswf: persistence: variable %s: missing dataSet element", name)
			}
			ds, err := restoreDataSet(inner)
			if err != nil {
				return nil, fmt.Errorf("mswf: persistence: variable %s: %w", name, err)
			}
			c.vars[name] = ds
		default:
			return nil, fmt.Errorf("mswf: persistence: variable %s has unknown type %q", name, typ)
		}
	}
	return c, nil
}

func parseSQLValue(kind, text string) sqldb.Value {
	switch kind {
	case "null":
		return sqldb.Null()
	case "integer":
		i, _ := strconv.ParseInt(text, 10, 64)
		return sqldb.Int(i)
	case "float":
		f, _ := strconv.ParseFloat(text, 64)
		return sqldb.Float(f)
	case "boolean":
		return sqldb.Bool(strings.EqualFold(text, "true"))
	}
	return sqldb.Str(text)
}

func persistDataSet(ds *dataset.DataSet) *xdm.Node {
	root := xdm.NewElement("dataSet")
	for _, tn := range ds.TableNames() {
		t := ds.Table(tn)
		te := root.Element("table")
		te.SetAttr("name", t.Name)
		te.SetAttr("columns", strings.Join(t.Columns, ","))
		if len(t.PrimaryKey) > 0 {
			te.SetAttr("keys", strings.Join(t.PrimaryKey, ","))
		}
		for _, r := range t.AllRows() {
			re := te.Element("row")
			re.SetAttr("state", r.State().String())
			for _, v := range r.Values() {
				ce := re.Element("c")
				ce.SetAttr("type", strings.ToLower(v.K.String()))
				if !v.IsNull() {
					ce.SetText(v.String())
				}
			}
		}
	}
	return root
}

func restoreDataSet(el *xdm.Node) (*dataset.DataSet, error) {
	ds := dataset.New()
	for _, te := range el.ChildElements() {
		name, _ := te.Attr("name")
		colsAttr, _ := te.Attr("columns")
		cols := strings.Split(colsAttr, ",")
		t := dataset.NewDataTable(name, cols...)
		if keys, ok := te.Attr("keys"); ok {
			t.PrimaryKey = strings.Split(keys, ",")
		}
		ds.AddTable(t)
		for _, re := range te.ChildElements() {
			var vals []sqldb.Value
			for _, ce := range re.ChildElements() {
				typ, _ := ce.Attr("type")
				vals = append(vals, parseSQLValue(typ, ce.TextContent()))
			}
			if len(vals) != len(cols) {
				return nil, fmt.Errorf("row has %d cells for %d columns", len(vals), len(cols))
			}
			row, err := t.AddRow(vals...)
			if err != nil {
				return nil, err
			}
			state, _ := re.Attr("state")
			if err := applyRowState(t, row, state); err != nil {
				return nil, err
			}
		}
	}
	return ds, nil
}

// applyRowState replays a persisted row state onto a freshly added row.
// Added rows stay Added; everything else is first accepted to Unchanged,
// then re-modified or re-deleted. (Original pre-modification values are
// not persisted — the adapter keys on the current values after restore,
// which is the documented limitation of this snapshot format.)
func applyRowState(t *dataset.DataTable, row *dataset.DataRow, state string) error {
	switch state {
	case dataset.Added.String():
		return nil
	case dataset.Unchanged.String(), "":
		acceptSingle(row)
		return nil
	case dataset.Modified.String():
		acceptSingle(row)
		// Re-mark as modified by rewriting the first column with itself.
		if len(t.Columns) > 0 {
			return row.Set(t.Columns[0], row.Values()[0])
		}
		return nil
	case dataset.Deleted.String():
		acceptSingle(row)
		row.Delete()
		return nil
	}
	return fmt.Errorf("unknown row state %q", state)
}

// acceptSingle flips one Added row to Unchanged without touching the rest
// of the table (AcceptChanges is table-wide; AcceptRow is per-row).
func acceptSingle(row *dataset.DataRow) { row.AcceptRow() }
