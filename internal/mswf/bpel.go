package mswf

import (
	"fmt"
	"sort"
	"strings"

	"wfsql/internal/xdm"
)

// This file implements the BPEL interoperability the paper attributes to
// the Workflow Foundation: "import and export tools for BPEL as well as
// an activity library representing BPEL are available. This way, one may
// also model workflows conforming to the BPEL specification."
//
// ExportBPEL maps a WF activity tree onto BPEL elements (sequence, while,
// if, invoke, empty); WF-specific activities that have no BPEL equivalent
// (code, SQL database) are emitted as BPEL extensionActivity elements in
// the wf: namespace, which ImportBPEL maps back. Conditions and code
// handlers travel by *name* (the code-separation style), so only
// markup-authored or name-carrying workflows are exportable — inline Go
// closures cannot be serialized, mirroring how real WF workflows with
// inline C# conditions could not round-trip to portable BPEL either.

// ExportBPEL serializes a WF activity tree as a BPEL process document.
func ExportBPEL(processName string, a Activity) (string, error) {
	root := xdm.NewElement("process")
	root.SetAttr("name", processName)
	root.SetAttr("xmlns", "http://docs.oasis-open.org/wsbpel/2.0/process/executable")
	el, err := exportActivity(a)
	if err != nil {
		return "", err
	}
	root.AppendChild(el)
	return root.Indent(), nil
}

func exportActivity(a Activity) (*xdm.Node, error) {
	switch t := a.(type) {
	case *SequenceActivity:
		el := xdm.NewElement("sequence")
		el.SetAttr("name", t.ActivityName)
		for _, c := range t.Children {
			ce, err := exportActivity(c)
			if err != nil {
				return nil, err
			}
			el.AppendChild(ce)
		}
		return el, nil
	case *ParallelActivity:
		el := xdm.NewElement("flow")
		el.SetAttr("name", t.ActivityName)
		for _, c := range t.Children {
			ce, err := exportActivity(c)
			if err != nil {
				return nil, err
			}
			el.AppendChild(ce)
		}
		return el, nil
	case *WhileActivity:
		if t.ConditionName == "" {
			return nil, fmt.Errorf("mswf: while %s has a code-only condition and cannot be exported to BPEL", t.ActivityName)
		}
		el := xdm.NewElement("while")
		el.SetAttr("name", t.ActivityName)
		cond := el.Element("condition")
		cond.SetAttr("expressionLanguage", "urn:wfsql:rule")
		cond.SetText(t.ConditionName)
		body, err := exportActivity(t.Body)
		if err != nil {
			return nil, err
		}
		el.AppendChild(body)
		return el, nil
	case *IfElseActivity:
		el := xdm.NewElement("if")
		el.SetAttr("name", t.ActivityName)
		for i, b := range t.Branches {
			var wrap *xdm.Node
			switch {
			case i == 0:
				wrap = el
			case b.Condition != nil:
				wrap = el.Element("elseif")
			default:
				wrap = el.Element("else")
			}
			if b.Condition != nil {
				if b.ConditionName == "" {
					return nil, fmt.Errorf("mswf: if %s has a code-only condition and cannot be exported to BPEL", t.ActivityName)
				}
				cond := wrap.Element("condition")
				cond.SetAttr("expressionLanguage", "urn:wfsql:rule")
				cond.SetText(b.ConditionName)
			}
			body, err := exportActivity(b.Body)
			if err != nil {
				return nil, err
			}
			wrap.AppendChild(body)
		}
		return el, nil
	case *InvokeWebServiceActivity:
		if t.ServiceName == "" {
			return nil, fmt.Errorf("mswf: invoke %s has a code-bound service and cannot be exported to BPEL", t.ActivityName)
		}
		el := xdm.NewElement("invoke")
		el.SetAttr("name", t.ActivityName)
		el.SetAttr("operation", t.ServiceName)
		for _, kv := range sortedPairs(t.Inputs) {
			p := el.Element("toPart")
			p.SetAttr("part", kv[0])
			p.SetAttr("fromVariable", kv[1])
		}
		for _, kv := range sortedPairs(t.Outputs) {
			p := el.Element("fromPart")
			p.SetAttr("part", kv[0])
			p.SetAttr("toVariable", kv[1])
		}
		return el, nil
	case *CodeActivity:
		if t.HandlerName == "" {
			return nil, fmt.Errorf("mswf: code activity %s has an inline handler and cannot be exported to BPEL", t.ActivityName)
		}
		el := xdm.NewElement("extensionActivity")
		c := el.Element("wf:code")
		c.SetAttr("name", t.ActivityName)
		c.SetAttr("handler", t.HandlerName)
		return el, nil
	case *SQLDatabaseActivity:
		el := xdm.NewElement("extensionActivity")
		c := el.Element("wf:sqlDatabase")
		c.SetAttr("name", t.ActivityName)
		c.SetAttr("connectionString", t.ConnectionString)
		c.SetAttr("statement", t.Statement)
		if t.ResultSetVar != "" {
			c.SetAttr("resultSet", t.ResultSetVar)
		}
		if t.ResultTable != "" {
			c.SetAttr("resultTable", t.ResultTable)
		}
		if t.RowsAffectedVar != "" {
			c.SetAttr("rowsAffected", t.RowsAffectedVar)
		}
		if len(t.KeyColumns) > 0 {
			c.SetAttr("keys", strings.Join(t.KeyColumns, ","))
		}
		for _, p := range t.Parameters {
			if p.Variable == "" {
				return nil, fmt.Errorf("mswf: sql activity %s has a literal parameter and cannot be exported", t.ActivityName)
			}
			pe := c.Element("wf:parameter")
			pe.SetAttr("name", p.Name)
			pe.SetAttr("variable", p.Variable)
		}
		return el, nil
	case *TerminateActivity:
		el := xdm.NewElement("exit")
		el.SetAttr("name", t.ActivityName)
		if t.Reason != "" {
			el.SetAttr("wf:reason", t.Reason)
		}
		return el, nil
	}
	return nil, fmt.Errorf("mswf: activity %T cannot be exported to BPEL", a)
}

// ImportBPEL parses a BPEL process document into a WF activity tree using
// the BPEL activity library mapping (the inverse of ExportBPEL). Plain
// BPEL produced by other tools is accepted for the supported subset.
func ImportBPEL(doc string) (Activity, error) {
	root, err := xdm.Parse(doc)
	if err != nil {
		return nil, fmt.Errorf("mswf: bpel: %w", err)
	}
	if localName(root.Name) != "process" {
		return nil, fmt.Errorf("mswf: bpel: root element is %s, want process", root.Name)
	}
	children := root.ChildElements()
	if len(children) != 1 {
		return nil, fmt.Errorf("mswf: bpel: process must contain exactly one activity, got %d", len(children))
	}
	return importActivity(children[0])
}

func importActivity(el *xdm.Node) (Activity, error) {
	name, _ := el.Attr("name")
	switch localName(el.Name) {
	case "sequence":
		act := &SequenceActivity{ActivityName: defaulted(name, "sequence")}
		for _, c := range el.ChildElements() {
			ca, err := importActivity(c)
			if err != nil {
				return nil, err
			}
			act.Children = append(act.Children, ca)
		}
		return act, nil
	case "flow":
		act := &ParallelActivity{ActivityName: defaulted(name, "flow")}
		for _, c := range el.ChildElements() {
			ca, err := importActivity(c)
			if err != nil {
				return nil, err
			}
			act.Children = append(act.Children, ca)
		}
		return act, nil
	case "empty":
		return &CodeActivity{ActivityName: defaulted(name, "empty"),
			Handler: func(*Context) error { return nil }}, nil
	case "exit":
		reason, _ := el.Attr("wf:reason")
		return &TerminateActivity{ActivityName: defaulted(name, "exit"), Reason: reason}, nil
	case "while":
		condEl := el.FirstChildElement("condition")
		if condEl == nil {
			return nil, fmt.Errorf("mswf: bpel: while %s has no condition", name)
		}
		ruleName := strings.TrimSpace(condEl.TextContent())
		var body Activity
		for _, c := range el.ChildElements() {
			if localName(c.Name) == "condition" {
				continue
			}
			ca, err := importActivity(c)
			if err != nil {
				return nil, err
			}
			body = ca
		}
		if body == nil {
			return nil, fmt.Errorf("mswf: bpel: while %s has no body", name)
		}
		return &WhileActivity{
			ActivityName:  defaulted(name, "while"),
			ConditionName: ruleName,
			Condition:     ruleByName(ruleName),
			Body:          body,
		}, nil
	case "if":
		act := &IfElseActivity{ActivityName: defaulted(name, "if")}
		// First branch: condition + activity directly under <if>.
		var firstCondName string
		var firstBody Activity
		for _, c := range el.ChildElements() {
			switch localName(c.Name) {
			case "condition":
				firstCondName = strings.TrimSpace(c.TextContent())
			case "elseif":
				condEl := c.FirstChildElement("condition")
				if condEl == nil {
					return nil, fmt.Errorf("mswf: bpel: elseif without condition in %s", name)
				}
				rn := strings.TrimSpace(condEl.TextContent())
				body, err := importBranchBody(c)
				if err != nil {
					return nil, err
				}
				act.Branches = append(act.Branches, IfElseBranch{
					Condition: ruleByName(rn), ConditionName: rn, Body: body})
			case "else":
				body, err := importBranchBody(c)
				if err != nil {
					return nil, err
				}
				act.Branches = append(act.Branches, IfElseBranch{Body: body})
			default:
				ca, err := importActivity(c)
				if err != nil {
					return nil, err
				}
				firstBody = ca
			}
		}
		if firstBody == nil || firstCondName == "" {
			return nil, fmt.Errorf("mswf: bpel: if %s missing first branch", name)
		}
		act.Branches = append([]IfElseBranch{{
			Condition: ruleByName(firstCondName), ConditionName: firstCondName, Body: firstBody,
		}}, act.Branches...)
		return act, nil
	case "invoke":
		op, _ := el.Attr("operation")
		if op == "" {
			return nil, fmt.Errorf("mswf: bpel: invoke %s has no operation", name)
		}
		act := &InvokeWebServiceActivity{ActivityName: defaulted(name, "invoke"),
			ServiceName: op, Inputs: map[string]string{}, Outputs: map[string]string{}}
		for _, c := range el.ChildElements() {
			part, _ := c.Attr("part")
			switch localName(c.Name) {
			case "toPart":
				v, _ := c.Attr("fromVariable")
				act.Inputs[part] = v
			case "fromPart":
				v, _ := c.Attr("toVariable")
				act.Outputs[part] = v
			}
		}
		return act, nil
	case "extensionActivity":
		inner := el.FirstChildElement("")
		if inner == nil {
			return nil, fmt.Errorf("mswf: bpel: empty extensionActivity")
		}
		iname, _ := inner.Attr("name")
		switch localName(inner.Name) {
		case "code":
			handler, _ := inner.Attr("handler")
			if handler == "" {
				return nil, fmt.Errorf("mswf: bpel: wf:code without handler")
			}
			return &CodeActivity{ActivityName: defaulted(iname, "code"), HandlerName: handler}, nil
		case "sqlDatabase":
			conn, _ := inner.Attr("connectionString")
			stmt, _ := inner.Attr("statement")
			if conn == "" || stmt == "" {
				return nil, fmt.Errorf("mswf: bpel: wf:sqlDatabase missing connectionString or statement")
			}
			act := NewSQLDatabase(defaulted(iname, "sqlDatabase"), conn, stmt)
			if v, ok := inner.Attr("resultSet"); ok {
				act.ResultSetVar = v
			}
			if v, ok := inner.Attr("resultTable"); ok {
				act.ResultTable = v
			}
			if v, ok := inner.Attr("rowsAffected"); ok {
				act.RowsAffectedVar = v
			}
			if v, ok := inner.Attr("keys"); ok {
				for _, k := range strings.Split(v, ",") {
					act.KeyColumns = append(act.KeyColumns, strings.TrimSpace(k))
				}
			}
			for _, pe := range inner.ChildElements() {
				pn, _ := pe.Attr("name")
				pv, _ := pe.Attr("variable")
				act.Param(pn, pv)
			}
			return act, nil
		}
		return nil, fmt.Errorf("mswf: bpel: unknown extension activity %s", inner.Name)
	}
	return nil, fmt.Errorf("mswf: bpel: unsupported BPEL element %s", el.Name)
}

func importBranchBody(el *xdm.Node) (Activity, error) {
	var body Activity
	for _, c := range el.ChildElements() {
		if localName(c.Name) == "condition" {
			continue
		}
		ca, err := importActivity(c)
		if err != nil {
			return nil, err
		}
		body = ca
	}
	if body == nil {
		return nil, fmt.Errorf("mswf: bpel: branch has no body")
	}
	return body, nil
}

// ruleByName builds a condition resolving the named rule at run time.
func ruleByName(name string) RuleCondition {
	return func(c *Context) (bool, error) {
		r, err := c.Runtime.rule(name)
		if err != nil {
			return false, err
		}
		return r(c)
	}
}

func defaulted(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// sortedPairs returns map entries as sorted [key, value] pairs for
// deterministic export.
func sortedPairs(m map[string]string) [][2]string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][2]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, [2]string{k, m[k]})
	}
	return out
}
