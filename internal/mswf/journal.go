package mswf

import (
	"fmt"

	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/resilience"
)

// This file wires the WF runtime to the durable instance journal. WF's
// real-world counterpart is the SqlWorkflowPersistenceService: workflow
// state checkpointed to a database so the host can crash and resume.
// Here the persistence.go XML snapshot of the initial host variables is
// journaled at instance creation, every effectful activity (SQL
// database activity, web-service invoke) journals its memoized result,
// and Resume rebuilds the context from the snapshot and replays the
// memos in order.

// AttachJournal connects a recorder to the runtime, restoring the
// persisted dead-letter log and installing persistence hooks for
// future dead letters and requeues.
func (rt *Runtime) AttachJournal(rec *journal.Recorder) {
	rt.mu.Lock()
	rt.jrec = rec
	obs := rt.obs
	rt.mu.Unlock()
	if rec == nil {
		return
	}
	if obs != nil {
		rec.SetObservability(obs)
	}
	if rt.DeadLetters == nil {
		return
	}
	var entries []resilience.DeadLetter
	for _, d := range rec.DeadLetters() {
		entries = append(entries, resilience.DeadLetter{
			Seq:      int(d.Seq),
			Activity: d.Activity,
			Target:   d.Target,
			Key:      d.Key,
			Attempts: d.Attempts,
			Reason:   d.Reason,
			LastErr:  d.LastErr,
		})
	}
	rt.DeadLetters.Restore(entries)
	rt.DeadLetters.SetPersistence(
		func(dl resilience.DeadLetter) {
			_ = rec.DeadLetter(0, journal.DeadLetterRecord{
				Seq:      int64(dl.Seq),
				Time:     dl.Time.UTC().Format("2006-01-02T15:04:05.999999999Z"),
				Activity: dl.Activity,
				Target:   dl.Target,
				Key:      dl.Key,
				Attempts: dl.Attempts,
				Reason:   dl.Reason,
				LastErr:  dl.LastErr,
			})
		},
		func(key string) { _ = rec.RequeueDeadLetter(key) },
	)
}

// Journal returns the attached recorder (nil when in-memory only).
func (rt *Runtime) Journal() *journal.Recorder {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.jrec
}

// InstanceID returns the durable instance ID of a journaled run (0 when
// running without a journal).
func (c *Context) InstanceID() int64 { return c.instID }

// takeReplay pops the next memoized result for the activity (FIFO per
// activity name), if any remain from a Resume.
func (c *Context) takeReplay(activity string) (journal.Memo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.replay[activity]
	if len(q) == 0 {
		return journal.Memo{}, false
	}
	m := q[0]
	c.replay[activity] = q[1:]
	return m, true
}

func (c *Context) nextOccurrence(activity string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.occs == nil {
		c.occs = map[string]int{}
	}
	c.occs[activity]++
	return c.occs[activity]
}

// RunEffect is the WF runtime's journal-then-effect protocol, mirroring
// engine.Ctx.RunEffect: replay memoized results when resuming, and in
// live mode bracket the journal append and the effect with the three
// chaos crash points.
func (c *Context) RunEffect(activity, effectKind string, effect func() (map[string]string, error), replay func(memo map[string]string) error) error {
	occ := c.nextOccurrence(activity)
	if m, ok := c.takeReplay(activity); ok {
		if err := replay(m.Data); err != nil {
			return fmt.Errorf("%s: replay: %w", activity, err)
		}
		c.Track(activity, "Replayed")
		c.currentSpan().Set("effect", effectKind).SetOutcome(obsv.OutcomeReplayed)
		c.Runtime.Obs().M().Counter("journal.replays").Inc()
		return nil
	}
	rec := c.jrec
	if rec == nil {
		_, err := effect()
		return err
	}
	if ce := rec.ShouldCrash(c.instID, activity, journal.CrashBeforeJournal); ce != nil {
		return ce
	}
	if err := rec.ActivityStart(c.instID, activity, occ, effectKind); err != nil {
		return err
	}
	if ce := rec.ShouldCrash(c.instID, activity, journal.CrashAfterJournalBeforeEffect); ce != nil {
		return ce
	}
	memo, err := effect()
	if err != nil {
		return err
	}
	if err := rec.ActivityComplete(c.instID, activity, occ, effectKind, memo); err != nil {
		return err
	}
	if ce := rec.ShouldCrash(c.instID, activity, journal.CrashAfterEffect); ce != nil {
		return ce
	}
	return nil
}

// Resume rebuilds a crashed instance from its journal — host variables
// from the instance-created snapshot, memoized effect results queued
// for replay — and executes the workflow to completion.
func (rt *Runtime) Resume(root Activity, ij *journal.InstanceJournal) (*Context, error) {
	var c *Context
	if state := ij.Input["state"]; state != "" {
		var err error
		c, err = rt.LoadState(state)
		if err != nil {
			return nil, fmt.Errorf("mswf: resume instance %d: %w", ij.ID, err)
		}
	} else {
		c = &Context{Runtime: rt, vars: map[string]any{}}
	}
	c.jrec = rt.Journal()
	c.instID = ij.ID
	c.mu.Lock()
	c.replay = make(map[string][]journal.Memo, len(ij.Memos))
	total := 0
	for act, memos := range ij.Memos {
		c.replay[act] = append([]journal.Memo(nil), memos...)
		total += len(memos)
	}
	c.mu.Unlock()
	c.Track(root.Name(), fmt.Sprintf("Recovering instance %d (%d memoized effects)", ij.ID, total))
	err := rt.runRoot(c, root)
	c.finishJournal(err)
	return c, err
}

// finishJournal appends the instance-complete record for non-crash
// terminations.
func (c *Context) finishJournal(err error) {
	if c.jrec == nil || journal.IsCrash(err) {
		return
	}
	fault := ""
	if err != nil {
		fault = err.Error()
	}
	_ = c.jrec.InstanceComplete(c.instID, fault)
}
