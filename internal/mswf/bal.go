package mswf

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"wfsql/internal/journal"
	"wfsql/internal/resilience"
	"wfsql/internal/wsbus"
)

// This file is the Base Activity Library (BAL): proprietary functionality
// for control flow, conditions, and code execution. Per the paper, BAL
// provides no activity type considering SQL issues — SQL support lives in
// the Custom Activity Library (cal.go).

// SequenceActivity executes children in order.
type SequenceActivity struct {
	ActivityName string
	Children     []Activity
}

// NewSequence builds a sequence.
func NewSequence(name string, children ...Activity) *SequenceActivity {
	return &SequenceActivity{ActivityName: name, Children: children}
}

// Name implements Activity.
func (s *SequenceActivity) Name() string { return s.ActivityName }

// Execute implements Activity.
func (s *SequenceActivity) Execute(c *Context) error {
	for _, ch := range s.Children {
		if err := runActivity(c, ch); err != nil {
			return err
		}
	}
	return nil
}

// ParallelActivity executes children concurrently (BAL's Parallel).
type ParallelActivity struct {
	ActivityName string
	Children     []Activity
}

// Name implements Activity.
func (p *ParallelActivity) Name() string { return p.ActivityName }

// Execute implements Activity.
func (p *ParallelActivity) Execute(c *Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(p.Children))
	for i, ch := range p.Children {
		wg.Add(1)
		go func(i int, ch Activity) {
			defer wg.Done()
			errs[i] = runActivity(c, ch)
		}(i, ch)
	}
	wg.Wait()
	// A simulated crash in any branch wins over ordinary faults: the
	// whole host died, so fault semantics must not engage.
	for _, err := range errs {
		if journal.IsCrash(err) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RuleCondition gates while loops and if/else branches. WF conditions are
// code (C#/VB) or declarative rules; here they are Go predicates, possibly
// resolved by name from the runtime (code-separation).
type RuleCondition func(c *Context) (bool, error)

// WhileActivity repeats its body while the condition holds.
// ConditionName records the declarative rule name when the condition came
// from markup (it makes the activity exportable to BPEL).
type WhileActivity struct {
	ActivityName  string
	Condition     RuleCondition
	ConditionName string
	Body          Activity
}

// NewWhile builds a while activity.
func NewWhile(name string, cond RuleCondition, body Activity) *WhileActivity {
	return &WhileActivity{ActivityName: name, Condition: cond, Body: body}
}

// Name implements Activity.
func (w *WhileActivity) Name() string { return w.ActivityName }

// Execute implements Activity.
func (w *WhileActivity) Execute(c *Context) error {
	for {
		ok, err := w.Condition(c)
		if err != nil {
			return fmt.Errorf("%s: condition: %w", w.ActivityName, err)
		}
		if !ok {
			return nil
		}
		if err := runActivity(c, w.Body); err != nil {
			return err
		}
	}
}

// IfElseBranch is one branch of an IfElseActivity. ConditionName records
// the declarative rule name for markup-authored branches.
type IfElseBranch struct {
	Condition     RuleCondition // nil = else branch
	ConditionName string
	Body          Activity
}

// IfElseActivity runs the first branch whose condition holds.
type IfElseActivity struct {
	ActivityName string
	Branches     []IfElseBranch
}

// Name implements Activity.
func (i *IfElseActivity) Name() string { return i.ActivityName }

// Execute implements Activity.
func (i *IfElseActivity) Execute(c *Context) error {
	for _, b := range i.Branches {
		if b.Condition == nil {
			return runActivity(c, b.Body)
		}
		ok, err := b.Condition(c)
		if err != nil {
			return fmt.Errorf("%s: condition: %w", i.ActivityName, err)
		}
		if ok {
			return runActivity(c, b.Body)
		}
	}
	return nil
}

// CodeActivity executes arbitrary code in the workflow — the mechanism the
// paper identifies as WF's only (workaround) route to the internal-data
// patterns before custom SQL activity types exist.
type CodeActivity struct {
	ActivityName string
	Handler      func(c *Context) error
	HandlerName  string // resolved from the runtime when Handler is nil
}

// NewCode builds a code activity with an inline handler (code-only
// authoring).
func NewCode(name string, handler func(c *Context) error) *CodeActivity {
	return &CodeActivity{ActivityName: name, Handler: handler}
}

// Name implements Activity.
func (a *CodeActivity) Name() string { return a.ActivityName }

// Execute implements Activity.
func (a *CodeActivity) Execute(c *Context) error {
	h := a.Handler
	if h == nil {
		var err error
		h, err = c.Runtime.handler(a.HandlerName)
		if err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
	}
	return h(c)
}

// InvokeWebServiceActivity calls a service — WF's communication activity,
// used by the running example for OrderFromSupplier. The service is either
// bound directly (code authoring) or resolved by name from the runtime
// (markup authoring). The activity reads input host variables into message
// parts and writes response parts back to host variables.
type InvokeWebServiceActivity struct {
	ActivityName string
	Service      func(map[string]string) (map[string]string, error)
	ServiceName  string            // resolved from the runtime when Service is nil
	Inputs       map[string]string // message part -> host variable name
	Outputs      map[string]string // message part -> host variable name

	// Retry re-invokes the service on transient errors; attempts and
	// backoff waits surface as tracking events. A panicking service is
	// recovered into a transient error instead of tearing down the host.
	Retry *resilience.Policy
	// DeadLetterKeyPart names the request message part whose value keys a
	// dead-letter record when retries are exhausted.
	DeadLetterKeyPart string
	// AbsorbExhausted completes the activity in a degraded state instead
	// of faulting: output host variables receive "DEADLETTERED:<key>" and
	// the workflow continues (the dead-letter log holds the evidence).
	AbsorbExhausted bool
}

// WithRetry attaches a retry policy.
func (a *InvokeWebServiceActivity) WithRetry(p *resilience.Policy) *InvokeWebServiceActivity {
	a.Retry = p
	return a
}

// WithDeadLetter configures dead-lettering of exhausted invocations.
func (a *InvokeWebServiceActivity) WithDeadLetter(keyPart string, absorb bool) *InvokeWebServiceActivity {
	a.DeadLetterKeyPart = keyPart
	a.AbsorbExhausted = absorb
	return a
}

// Name implements Activity.
func (a *InvokeWebServiceActivity) Name() string { return a.ActivityName }

// Execute implements Activity. The call runs as one journaled invoke
// effect whose memo records the final output host-variable values
// (including degraded DEADLETTERED markers): a resumed instance
// replays the response without re-invoking the service. Invoke memos
// are durable as soon as they are journaled — an external service's
// side effects do not roll back with any database transaction.
func (a *InvokeWebServiceActivity) Execute(c *Context) error {
	effect := func() (map[string]string, error) {
		if err := a.executeLive(c); err != nil {
			return nil, err
		}
		memo := map[string]string{}
		for _, hv := range a.Outputs {
			memo["out:"+hv] = c.GetString(hv)
		}
		return memo, nil
	}
	replay := func(memo map[string]string) error {
		for k, v := range memo {
			if strings.HasPrefix(k, "out:") {
				c.Set(strings.TrimPrefix(k, "out:"), v)
			}
		}
		return nil
	}
	return c.RunEffect(a.ActivityName, journal.EffectInvoke, effect, replay)
}

// executeLive performs the actual invocation (no journaling).
func (a *InvokeWebServiceActivity) executeLive(c *Context) error {
	if a.Service == nil && a.ServiceName != "" {
		svc, err := c.Runtime.service(a.ServiceName)
		if err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
		a.Service = svc
	}
	if a.Service == nil {
		return fmt.Errorf("%s: no service bound", a.ActivityName)
	}
	req := map[string]string{}
	for part, hv := range a.Inputs {
		req[part] = c.GetString(hv)
	}

	call := func(int) (map[string]string, error) { return a.safeCall(req) }
	var resp map[string]string
	var err error
	if a.Retry == nil {
		resp, err = call(0)
	} else {
		obs := resilience.Observer{
			OnAttempt: func(n, max int) {
				if n > 1 {
					c.Track(a.ActivityName, fmt.Sprintf("Retrying %d/%d", n, max))
				}
			},
			OnBackoff: func(n int, d time.Duration) {
				c.Track(a.ActivityName, fmt.Sprintf("Backoff %s after attempt %d", d, n))
			},
		}
		resp, err = resilience.Do(a.Retry, obs, call)
	}
	if ab := resilience.Abandoned(err); ab != nil {
		key := req[a.DeadLetterKeyPart]
		c.Runtime.DeadLetters.Add(resilience.DeadLetter{
			Activity: a.ActivityName,
			Target:   a.serviceLabel(),
			Key:      key,
			Attempts: ab.Attempts,
			Reason:   ab.Reason,
			LastErr:  ab.Err.Error(),
		})
		c.Track(a.ActivityName, fmt.Sprintf("DeadLettered key=%s after %d attempts", key, ab.Attempts))
		if a.AbsorbExhausted {
			for _, hv := range a.Outputs {
				c.Set(hv, "DEADLETTERED:"+key)
			}
			return nil
		}
	}
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	for part, hv := range a.Outputs {
		v, ok := resp[part]
		if !ok {
			return fmt.Errorf("%s: response missing part %s", a.ActivityName, part)
		}
		c.Set(hv, v)
	}
	return nil
}

// safeCall invokes the bound service, converting a panic into a transient
// error (the WF host must survive a misbehaving proxy).
func (a *InvokeWebServiceActivity) safeCall(req map[string]string) (resp map[string]string, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, wsbus.Transient(fmt.Errorf("service panicked: %v", r))
		}
	}()
	return a.Service(req)
}

func (a *InvokeWebServiceActivity) serviceLabel() string {
	if a.ServiceName != "" {
		return a.ServiceName
	}
	return "(bound service)"
}

// TerminateActivity aborts the workflow with an error.
type TerminateActivity struct {
	ActivityName string
	Reason       string
}

// Name implements Activity.
func (t *TerminateActivity) Name() string { return t.ActivityName }

// Execute implements Activity.
func (t *TerminateActivity) Execute(c *Context) error {
	return fmt.Errorf("workflow terminated: %s", t.Reason)
}
