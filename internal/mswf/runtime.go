// Package mswf reimplements the Microsoft Windows Workflow Foundation
// stack the paper surveys. Unlike the IBM and Oracle products, WF is not
// BPEL-based: workflows are authored in a .NET language (code-only), in
// XOML markup (markup-only), or both (code-separation), and executed by a
// runtime engine hosted in an ordinary process, backed by pluggable
// runtime services (tracking, persistence).
//
// This package therefore has its own small activity model and runtime —
// deliberately separate from internal/engine — plus the Base Activity
// Library (no SQL support, per the paper), a Custom Activity Library with
// the SQLDatabaseActivity, a XOML loader, and host variables in which
// query results are materialized as dataset.DataSet objects.
package mswf

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/resilience"
	"wfsql/internal/sqldb"
)

// Provider identifies a database provider in a connection string. The SQL
// database activity implementation the paper presents is restricted to SQL
// Server and Oracle database systems; other providers are rejected.
type Provider string

// Supported (and one unsupported, for tests) providers.
const (
	SQLServer Provider = "SqlServer"
	OracleDB  Provider = "Oracle"
)

// Runtime is the workflow runtime engine together with its host-level
// configuration (registered databases, code handlers, rule conditions).
type Runtime struct {
	// DeadLetters collects web-service invocations whose retries were
	// exhausted and that the workflow absorbed instead of faulting — the
	// host-level reliability audit trail (WF would use a tracking or
	// persistence service for this role).
	DeadLetters *resilience.DeadLetterLog

	mu        sync.RWMutex
	databases map[string]registeredDB
	connCache map[string]*sqldb.DB // memoized openConnection results, keyed by raw connection string
	handlers  map[string]func(*Context) error
	rules     map[string]func(*Context) (bool, error)
	services  map[string]func(map[string]string) (map[string]string, error)
	tracking  bool
	jrec      *journal.Recorder
	obs       *obsv.Observability
}

// SetObservability attaches (or with nil detaches) a tracing/metrics
// bundle: each Run then emits an instance span (stack "WF") with one
// activity span per executed activity, mirroring the tracking service,
// and the bundle is propagated to the dead-letter log and any attached
// journal recorder.
func (rt *Runtime) SetObservability(o *obsv.Observability) {
	rt.mu.Lock()
	rt.obs = o
	jrec := rt.jrec
	rt.mu.Unlock()
	if rt.DeadLetters != nil {
		rt.DeadLetters.SetObservability(o)
	}
	if jrec != nil {
		jrec.SetObservability(o)
	}
}

// Obs returns the attached observability bundle (nil-safe to use).
func (rt *Runtime) Obs() *obsv.Observability {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.obs
}

type registeredDB struct {
	provider Provider
	db       *sqldb.DB
}

// NewRuntime creates a workflow runtime.
func NewRuntime() *Runtime {
	return &Runtime{
		DeadLetters: resilience.NewDeadLetterLog(),
		databases:   map[string]registeredDB{},
		connCache:   map[string]*sqldb.DB{},
		handlers:    map[string]func(*Context) error{},
		rules:       map[string]func(*Context) (bool, error){},
		services:    map[string]func(map[string]string) (map[string]string, error){},
		tracking:    true,
	}
}

// RegisterService installs a named external service for
// InvokeWebServiceActivity resolution from markup.
func (rt *Runtime) RegisterService(name string, fn func(map[string]string) (map[string]string, error)) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.services[name] = fn
}

func (rt *Runtime) service(name string) (func(map[string]string) (map[string]string, error), error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	s, ok := rt.services[name]
	if !ok {
		return nil, fmt.Errorf("mswf: no service %q registered", name)
	}
	return s, nil
}

// RegisterDatabase makes a database reachable from connection strings as
// "Provider=<p>;Data Source=<name>".
func (rt *Runtime) RegisterDatabase(name string, provider Provider, db *sqldb.DB) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.databases[strings.ToLower(name)] = registeredDB{provider: provider, db: db}
	// A re-registration can change what existing connection strings
	// resolve to; drop the memoized resolutions.
	for k := range rt.connCache {
		delete(rt.connCache, k)
	}
}

// RegisterHandler installs a named code handler (the code-separation
// authoring mode: markup references handlers implemented in code).
func (rt *Runtime) RegisterHandler(name string, fn func(*Context) error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.handlers[name] = fn
}

// RegisterRule installs a named rule condition for markup while/if
// activities.
func (rt *Runtime) RegisterRule(name string, fn func(*Context) (bool, error)) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.rules[name] = fn
}

func (rt *Runtime) handler(name string) (func(*Context) error, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	h, ok := rt.handlers[name]
	if !ok {
		return nil, fmt.Errorf("mswf: no code handler %q registered", name)
	}
	return h, nil
}

func (rt *Runtime) rule(name string) (func(*Context) (bool, error), error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	r, ok := rt.rules[name]
	if !ok {
		return nil, fmt.Errorf("mswf: no rule condition %q registered", name)
	}
	return r, nil
}

// openConnection parses an ADO-style connection string and returns the
// database, enforcing the provider restriction. Successful resolutions
// are memoized per raw string: every SQL activity execution opens its
// own connection, and re-parsing the same few strings per statement is
// pure overhead.
func (rt *Runtime) openConnection(connStr string) (*sqldb.DB, error) {
	rt.mu.RLock()
	cached, ok := rt.connCache[connStr]
	rt.mu.RUnlock()
	if ok {
		return cached, nil
	}
	provider, source := "", ""
	for _, part := range strings.Split(connStr, ";") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			continue
		}
		switch strings.ToLower(strings.TrimSpace(kv[0])) {
		case "provider":
			provider = strings.TrimSpace(kv[1])
		case "data source", "server":
			source = strings.TrimSpace(kv[1])
		}
	}
	if source == "" {
		return nil, fmt.Errorf("mswf: connection string %q has no Data Source", connStr)
	}
	rt.mu.RLock()
	reg, ok := rt.databases[strings.ToLower(source)]
	rt.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mswf: unknown data source %q", source)
	}
	if provider != "" && !strings.EqualFold(provider, string(reg.provider)) {
		return nil, fmt.Errorf("mswf: connection string provider %q does not match registered provider %q", provider, reg.provider)
	}
	if reg.provider != SQLServer && reg.provider != OracleDB {
		return nil, fmt.Errorf("mswf: SQL database activity supports only SqlServer and Oracle providers, not %q", reg.provider)
	}
	rt.mu.Lock()
	rt.connCache[connStr] = reg.db
	rt.mu.Unlock()
	return reg.db, nil
}

// TrackEvent is one tracking-service record.
type TrackEvent struct {
	Activity string
	Status   string // "Executing", "Closed", "Faulted"
}

// Context is the execution context of a workflow instance: host variables
// plus runtime access. WF host variables are fields of the workflow class;
// here they are a typed map.
type Context struct {
	Runtime *Runtime

	mu       sync.Mutex
	vars     map[string]any
	events   []TrackEvent
	sessions map[*sqldb.DB]*sqldb.Session // one session per DB per instance

	// Durable-execution state (see journal.go): the durable instance
	// ID, the attached recorder, replay queues of memoized effect
	// results, and per-activity occurrence counters.
	instID int64
	jrec   *journal.Recorder
	replay map[string][]journal.Memo
	occs   map[string]int

	// Observability spans: the instance span for the whole run and the
	// innermost activity span currently executing (a serial
	// approximation; parallel branches share it, mirroring the tracer's
	// ambient fallback).
	span    *obsv.Span
	spanTop *obsv.Span

	// runCtx is the instance's execution budget (RunCtx). Activities are
	// refused at their boundary once it expires, and every SQL session the
	// instance opens is bound to it so statements are refused at the next
	// statement boundary. Nil when the instance runs without a budget.
	runCtx context.Context
}

// Context returns the instance's execution-budget context (never nil).
func (c *Context) Context() context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runCtx == nil {
		return context.Background()
	}
	return c.runCtx
}

// currentSpan returns the innermost open span (activity, else instance).
func (c *Context) currentSpan() *obsv.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spanTop != nil {
		return c.spanTop
	}
	return c.span
}

// SessionFor returns this instance's session on db, opening it on first
// use — the one-session-per-instance contract. WF's SQL activities run in
// autocommit (the session never holds an open transaction across
// activities), but routing every statement of an instance through one
// session means a future transaction bracket would survive across
// activities instead of being silently dropped with a throwaway session,
// and the session's internal mutex keeps parallel branches of the same
// instance safe.
func (c *Context) SessionFor(db *sqldb.DB) *sqldb.Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sessions == nil {
		c.sessions = map[*sqldb.DB]*sqldb.Session{}
	}
	s, ok := c.sessions[db]
	if !ok {
		s = db.Session()
		if c.runCtx != nil {
			// Deadline propagation: the instance budget gates every
			// statement boundary of its sessions.
			s.BindContext(c.runCtx)
		}
		c.sessions[db] = s
	}
	return s
}

// Get returns a host variable.
func (c *Context) Get(name string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vars[name]
	return v, ok
}

// Set assigns a host variable.
func (c *Context) Set(name string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vars[name] = v
}

// GetString returns a host variable as a string ("" if absent).
func (c *Context) GetString(name string) string {
	v, ok := c.Get(name)
	if !ok || v == nil {
		return ""
	}
	return fmt.Sprint(v)
}

// GetInt returns a host variable as an int64.
func (c *Context) GetInt(name string) (int64, error) {
	v, ok := c.Get(name)
	if !ok {
		return 0, fmt.Errorf("mswf: no host variable %s", name)
	}
	switch t := v.(type) {
	case int:
		return int64(t), nil
	case int64:
		return t, nil
	case sqldb.Value:
		if i, ok := t.AsInt(); ok {
			return i, nil
		}
	case string:
		var i int64
		_, err := fmt.Sscanf(t, "%d", &i)
		if err == nil {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mswf: host variable %s is not an integer (%T)", name, v)
}

// VarNames lists host variable names, sorted (for persistence snapshots).
func (c *Context) VarNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.vars))
	for k := range c.vars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Track appends a tracking event (no-op when tracking is disabled).
func (c *Context) Track(activity, status string) {
	if !c.Runtime.tracking {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, TrackEvent{Activity: activity, Status: status})
}

// Events returns the tracking-service records.
func (c *Context) Events() []TrackEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TrackEvent(nil), c.events...)
}

// Activity is one node of a WF workflow.
type Activity interface {
	Name() string
	Execute(c *Context) error
}

// Run executes a workflow with initial host variables and returns the
// final context. With a journal attached (AttachJournal) the run is
// durable: the initial host-variable snapshot is journaled at creation
// so a crashed instance can be rebuilt by Resume, and completion is
// journaled unless the instance died at a crash point.
func (rt *Runtime) Run(root Activity, initial map[string]any) (*Context, error) {
	return rt.RunCtx(context.Background(), root, initial)
}

// ErrBudgetExceeded is wrapped into the fault an activity returns when the
// instance's execution budget (RunCtx) expired before the activity could
// start.
var ErrBudgetExceeded = errors.New("mswf: instance budget exceeded")

// RunCtx executes a workflow under an execution budget: once ctx expires,
// the next activity boundary refuses to start (the run faults with
// ErrBudgetExceeded) and every SQL session of the instance refuses further
// statements. Cancellation is cooperative — a running statement or handler
// finishes; the budget is enforced at boundaries.
func (rt *Runtime) RunCtx(ctx context.Context, root Activity, initial map[string]any) (*Context, error) {
	c := &Context{Runtime: rt, vars: map[string]any{}, runCtx: ctx}
	for k, v := range initial {
		c.vars[k] = v
	}
	if rec := rt.Journal(); rec != nil {
		c.jrec = rec
		c.instID = rec.AllocateID()
		if err := rec.InstanceCreated(c.instID, root.Name(), "wf",
			map[string]string{"state": SaveState(c)}); err != nil {
			return c, err
		}
	}
	err := rt.runRoot(c, root)
	c.finishJournal(err)
	return c, err
}

// runRoot executes the workflow root under an instance span (stack
// "WF"), shared by Run and Resume.
func (rt *Runtime) runRoot(c *Context, root Activity) error {
	obs := rt.Obs()
	span := obs.T().Start(0, obsv.KindInstance, root.Name())
	if span != nil {
		span.Stack = "WF"
		span.Instance = c.instID
		c.mu.Lock()
		c.span = span
		c.mu.Unlock()
		obs.T().SetAmbient(span.SpanID())
		defer obs.T().SetAmbient(0)
	}
	obs.M().Counter("wf.instances").Inc()
	err := runActivity(c, root)
	switch {
	case journal.IsCrash(err):
		span.End(obsv.OutcomeCrashed)
	case err != nil:
		span.Set("fault", err.Error()).End(obsv.OutcomeFault)
	default:
		span.End(obsv.OutcomeOK)
	}
	return err
}

func runActivity(c *Context, a Activity) error {
	obs := c.Runtime.Obs()
	// Budget boundary: an expired instance budget refuses the activity
	// before it starts (mirrors engine.execChild).
	if err := c.Context().Err(); err != nil {
		obs.M().Counter("wf.deadline_expired").Inc()
		c.Track(a.Name(), "Faulted")
		return fmt.Errorf("%s: %w: %w", a.Name(), ErrBudgetExceeded, err)
	}
	var sp *obsv.Span
	if t := obs.T(); t != nil {
		sp = t.Start(c.currentSpan().SpanID(), obsv.KindActivity, a.Name())
		sp.Stack = "WF"
		sp.Instance = c.instID
		c.mu.Lock()
		prev := c.spanTop
		c.spanTop = sp
		c.mu.Unlock()
		prevAmb := t.Ambient()
		t.SetAmbient(sp.SpanID())
		defer func() {
			t.SetAmbient(prevAmb)
			c.mu.Lock()
			c.spanTop = prev
			c.mu.Unlock()
		}()
	}
	obs.M().Counter("wf.activities").Inc()
	c.Track(a.Name(), "Executing")
	if err := a.Execute(c); err != nil {
		c.Track(a.Name(), "Faulted")
		if journal.IsCrash(err) {
			sp.End(obsv.OutcomeCrashed)
		} else {
			sp.Set("fault", err.Error()).End(obsv.OutcomeFault)
		}
		return err
	}
	c.Track(a.Name(), "Closed")
	// End("") keeps an outcome recorded earlier (e.g. OutcomeReplayed
	// from the journal replay path), defaulting to OK.
	sp.End("")
	return nil
}
