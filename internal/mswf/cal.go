package mswf

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"wfsql/internal/dataset"
	"wfsql/internal/journal"
	"wfsql/internal/resilience"
	"wfsql/internal/sqldb"
	"wfsql/internal/xdm"
)

// This file is the Custom Activity Library (CAL): the customized SQL
// database activity type the paper describes, built on the ADO.NET-style
// dataset package. It provides SQL inline support on a higher level of
// abstraction than raw code activities.

// SQLParameter binds one @name host variable of a statement: either from
// a host variable (Variable) or a fixed value (Value).
type SQLParameter struct {
	Name     string // parameter name as written in the SQL, e.g. "@item"
	Variable string // host variable supplying the value
	Value    *sqldb.Value
}

// SQLDatabaseActivity executes one SQL statement — queries, DML, DDL, and
// stored procedure calls — against a statically configured connection.
// Table names are a static part of the statement (no reference mechanism,
// unlike BIS set references). Query and CALL results are always
// materialized into a DataSet object stored in a host variable: execution
// is aligned with a consecutive materialization step.
type SQLDatabaseActivity struct {
	ActivityName     string
	ConnectionString string // static; opened per execution, closed after
	Statement        string // SQL text with @name parameters
	Parameters       []SQLParameter
	ResultSetVar     string // host variable receiving the *dataset.DataSet
	ResultTable      string // table name inside the DataSet (default "Result")
	KeyColumns       []string

	// Event handlers, executable before/after the SQL statement (e.g. to
	// initialize parameter values or process result data directly).
	BeforeExecute func(c *Context) error
	AfterExecute  func(c *Context) error

	// RowsAffectedVar optionally receives the DML row count.
	RowsAffectedVar string

	// Retry re-executes the statement on transient database errors. WF's
	// SQL database activity opens and closes its own connection per
	// execution (autocommit), so a retried attempt never replays inside a
	// wider transaction. Attempts surface as "Retrying" tracking events.
	Retry *resilience.Policy

	// The @name→:name statement rewrite depends only on Statement and
	// Parameters, both frozen once the workflow is deployed, so it is
	// computed once on first execution rather than per instance.
	rewriteOnce sync.Once
	rewritten   string
	rewriteErr  error
}

// NewSQLDatabase builds a SQL database activity.
func NewSQLDatabase(name, connectionString, statement string) *SQLDatabaseActivity {
	return &SQLDatabaseActivity{ActivityName: name, ConnectionString: connectionString, Statement: statement}
}

// Param binds a @name parameter to a host variable.
func (a *SQLDatabaseActivity) Param(name, hostVariable string) *SQLDatabaseActivity {
	a.Parameters = append(a.Parameters, SQLParameter{Name: name, Variable: hostVariable})
	return a
}

// Into names the host variable receiving the materialized DataSet.
func (a *SQLDatabaseActivity) Into(hostVariable string) *SQLDatabaseActivity {
	a.ResultSetVar = hostVariable
	return a
}

// Keys configures the key columns recorded on the materialized table
// (enables Find and later synchronization).
func (a *SQLDatabaseActivity) Keys(cols ...string) *SQLDatabaseActivity {
	a.KeyColumns = cols
	return a
}

// WithRetry attaches a retry policy for transient database faults.
func (a *SQLDatabaseActivity) WithRetry(p *resilience.Policy) *SQLDatabaseActivity {
	a.Retry = p
	return a
}

// Name implements Activity.
func (a *SQLDatabaseActivity) Name() string { return a.ActivityName }

// Execute implements Activity. The statement execution and result
// materialization run as one journaled SQL effect: the memo records the
// materialized DataSet (serialized with the same XML codec the
// persistence service uses) or the DML row count, so a resumed instance
// restores the result without touching the database. The activity runs
// in autocommit (each execution opens and closes its own connection),
// so its memo is durable the moment it is journaled. The before/after
// event handlers are plain code — deterministic, so they re-run on
// replay rather than being memoized.
func (a *SQLDatabaseActivity) Execute(c *Context) error {
	if a.BeforeExecute != nil {
		if err := a.BeforeExecute(c); err != nil {
			return fmt.Errorf("%s: before-execute: %w", a.ActivityName, err)
		}
	}
	effect := func() (map[string]string, error) { return a.executeLive(c) }
	replay := func(memo map[string]string) error { return a.applyMemo(c, memo) }
	if err := c.RunEffect(a.ActivityName, journal.EffectSQL, effect, replay); err != nil {
		return err
	}
	if a.AfterExecute != nil {
		if err := a.AfterExecute(c); err != nil {
			return fmt.Errorf("%s: after-execute: %w", a.ActivityName, err)
		}
	}
	return nil
}

// executeLive runs the statement and materializes its result, returning
// the memo describing the visible outcome.
func (a *SQLDatabaseActivity) executeLive(c *Context) (map[string]string, error) {
	db, err := c.Runtime.openConnection(a.ConnectionString)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	sql, named, err := a.bindParameters(c)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.ActivityName, err)
	}

	// Statements run in autocommit on the instance's session (one session
	// per instance per data source — see Context.SessionFor), so
	// re-execution after a transient fault never replays work inside a
	// wider transaction, and a retry reuses the same session instead of
	// minting a throwaway handle per attempt.
	sess := c.SessionFor(db)
	execOnce := func(int) (*sqldb.Result, error) {
		return sess.ExecNamed(sql, named)
	}
	var res *sqldb.Result
	if a.Retry == nil {
		res, err = execOnce(0)
	} else {
		res, err = resilience.Do(a.Retry, a.trackObserver(c), execOnce)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	// (The connection closes here: each activity opens and closes its own.)

	memo := map[string]string{}
	if res.IsQuery() {
		if a.ResultSetVar == "" {
			return nil, fmt.Errorf("%s: query result requires a result host variable", a.ActivityName)
		}
		tableName := a.ResultTable
		if tableName == "" {
			tableName = "Result"
		}
		ds := dataset.New()
		t := dataset.NewDataTable(tableName, res.Columns...)
		t.PrimaryKey = append([]string(nil), a.KeyColumns...)
		ds.AddTable(t)
		for _, row := range res.Rows {
			vals := append([]sqldb.Value(nil), row...)
			if _, err := t.AddRow(vals...); err != nil {
				return nil, fmt.Errorf("%s: %w", a.ActivityName, err)
			}
		}
		t.AcceptChanges() // materialized rows are Unchanged
		c.Set(a.ResultSetVar, ds)
		memo["dataset"] = persistDataSet(ds).String()
	} else if a.RowsAffectedVar != "" {
		c.Set(a.RowsAffectedVar, int64(res.RowsAffected))
		memo["rows"] = strconv.FormatInt(int64(res.RowsAffected), 10)
	}
	return memo, nil
}

// applyMemo restores the activity's visible outcome from a journaled
// memo (replay path — no database access).
func (a *SQLDatabaseActivity) applyMemo(c *Context, memo map[string]string) error {
	if xmlDS, ok := memo["dataset"]; ok && a.ResultSetVar != "" {
		el, err := xdm.Parse(xmlDS)
		if err != nil {
			return fmt.Errorf("%s: memoized dataset: %w", a.ActivityName, err)
		}
		ds, err := restoreDataSet(el)
		if err != nil {
			return fmt.Errorf("%s: memoized dataset: %w", a.ActivityName, err)
		}
		c.Set(a.ResultSetVar, ds)
	}
	if rows, ok := memo["rows"]; ok && a.RowsAffectedVar != "" {
		n, err := strconv.ParseInt(rows, 10, 64)
		if err != nil {
			return fmt.Errorf("%s: memoized row count: %w", a.ActivityName, err)
		}
		c.Set(a.RowsAffectedVar, n)
	}
	return nil
}

// trackObserver surfaces retry attempts and backoff waits through the
// tracking service, the WF-idiomatic monitoring surface.
func (a *SQLDatabaseActivity) trackObserver(c *Context) resilience.Observer {
	return resilience.Observer{
		OnAttempt: func(n, max int) {
			if n > 1 {
				c.Track(a.ActivityName, fmt.Sprintf("Retrying %d/%d", n, max))
			}
		},
		OnBackoff: func(n int, d time.Duration) {
			c.Track(a.ActivityName, fmt.Sprintf("Backoff %s after attempt %d", d, n))
		},
	}
}

// bindParameters rewrites @name parameters to the engine's :name form and
// collects their values from host variables.
func (a *SQLDatabaseActivity) bindParameters(c *Context) (string, map[string]sqldb.Value, error) {
	a.rewriteOnce.Do(func() {
		sql := a.Statement
		for _, p := range a.Parameters {
			bare := strings.TrimPrefix(p.Name, "@")
			if !strings.Contains(sql, "@"+bare) {
				a.rewriteErr = fmt.Errorf("parameter %s not present in statement", p.Name)
				return
			}
			sql = strings.ReplaceAll(sql, "@"+bare, ":"+bare)
		}
		a.rewritten = sql
	})
	if a.rewriteErr != nil {
		return "", nil, a.rewriteErr
	}
	named := make(map[string]sqldb.Value, len(a.Parameters))
	for _, p := range a.Parameters {
		bare := strings.TrimPrefix(p.Name, "@")
		if p.Value != nil {
			named[bare] = *p.Value
			continue
		}
		v, ok := c.Get(p.Variable)
		if !ok {
			return "", nil, fmt.Errorf("parameter %s: no host variable %s", p.Name, p.Variable)
		}
		named[bare] = toSQLValue(v)
	}
	return a.rewritten, named, nil
}

// toSQLValue converts a host variable to a SQL value.
func toSQLValue(v any) sqldb.Value {
	switch t := v.(type) {
	case nil:
		return sqldb.Null()
	case sqldb.Value:
		return t
	case int:
		return sqldb.Int(int64(t))
	case int64:
		return sqldb.Int(t)
	case float64:
		return sqldb.Float(t)
	case bool:
		return sqldb.Bool(t)
	case string:
		return sqldb.Str(t)
	}
	return sqldb.Str(fmt.Sprint(v))
}

// NewDataAdapter builds a dataset adapter over a WF connection string —
// the ADO.NET surface code activities use for the Synchronization Pattern.
func NewDataAdapter(c *Context, connectionString, selectSQL, table string, keys ...string) (*dataset.DataAdapter, error) {
	db, err := c.Runtime.openConnection(connectionString)
	if err != nil {
		return nil, err
	}
	return &dataset.DataAdapter{DB: db, SelectSQL: selectSQL, Table: table, KeyColumns: keys}, nil
}
