// Package bis reimplements the SQL inline support of IBM's Business
// Integration Suite as surveyed by the paper: the Information Server
// plugin's *information service activities* (SQL activity, retrieve set
// activity, atomic SQL sequence), set reference variables that pass
// external data sets by reference, data source variables with dynamic
// binding, and preparation/cleanup statement lifecycle management for
// database entities.
//
// Process models are built with ProcessBuilder (the WebSphere Integration
// Developer role) and executed on the shared BPEL engine in
// internal/engine (the WebSphere Process Server role).
package bis

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"wfsql/internal/engine"
	"wfsql/internal/journal"
	"wfsql/internal/sqldb"
)

// stateKey is the instance-context key of the BIS runtime state.
const stateKey = "bis.state"

// SetRefKind distinguishes input and result set references.
type SetRefKind int

// Set reference kinds: an input set reference refers to an existing table;
// a result set reference refers to a (typically generated) table holding a
// query or stored-procedure result.
const (
	InputSetRef SetRefKind = iota
	ResultSetRef
)

// SetRef is a set reference variable: a handle to an external table used
// in place of a static table name, so external data sets are passed across
// activities and processes by reference instead of by value.
type SetRef struct {
	Name  string
	Kind  SetRefKind
	Table string // bound table name; for result refs, generated per instance

	// Preparation and Cleanup are DDL statements bound to this set
	// reference; {TABLE} inside them is substituted with the bound table
	// name. Cleanup runs at the end of the workflow.
	Preparation string
	Cleanup     string
}

// state is the per-instance BIS runtime state.
type state struct {
	mu       sync.Mutex
	refs     map[string]*SetRef
	dsvars   map[string]string // data source variable -> data source name
	sessions map[*sqldb.DB]*sqldb.Session
	inTxn    map[*sqldb.DB]bool
	atomic   int // depth of atomic SQL sequences
	mode     engine.TransactionMode

	// Durability wiring: with a journal attached, transaction
	// boundaries (BEGIN/COMMIT/ROLLBACK) are written ahead so recovery
	// knows which SQL memos are durable (committed) and which belong
	// to a unit of work that must re-run as a whole.
	jrec   *journal.Recorder
	instID int64

	// runCtx is the owning instance's execution budget, bound to every
	// session the instance opens so an expired deadline stops SQL work
	// at the next statement boundary. Nil when the instance runs without
	// a budget.
	runCtx context.Context
}

// journalTxn appends a transaction-boundary record (best effort).
func (st *state) journalTxn(kind journal.Kind, label string) {
	if st.jrec == nil {
		return
	}
	switch kind {
	case journal.KindTxnBegin:
		_ = st.jrec.TxnBegin(st.instID, label)
	case journal.KindTxnCommit:
		_ = st.jrec.TxnCommit(st.instID, label)
	case journal.KindTxnRollback:
		_ = st.jrec.TxnRollback(st.instID, label)
	}
}

func getState(ctx *engine.Ctx) (*state, error) {
	v, ok := ctx.Inst.Context(stateKey)
	if !ok {
		return nil, fmt.Errorf("bis: process was not built with bis.ProcessBuilder")
	}
	return v.(*state), nil
}

// SetReference returns the named set reference of a running instance.
func SetReference(ctx *engine.Ctx, name string) (*SetRef, error) {
	st, err := getState(ctx)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.refs[name]
	if !ok {
		return nil, fmt.Errorf("bis: no set reference %s", name)
	}
	return r, nil
}

// BindSetReference redefines a set reference to point at another table at
// runtime (dynamic binding of external data sets).
func BindSetReference(ctx *engine.Ctx, name, table string) error {
	r, err := SetReference(ctx, name)
	if err != nil {
		return err
	}
	st, _ := getState(ctx)
	st.mu.Lock()
	defer st.mu.Unlock()
	r.Table = table
	return nil
}

// RebindDataSource redirects a data source variable to another registered
// data source at runtime — the paper's example of switching between a test
// and a production environment without redeploying the process.
func RebindDataSource(ctx *engine.Ctx, dsVar, dataSource string) error {
	st, err := getState(ctx)
	if err != nil {
		return err
	}
	if _, err := ctx.Engine.DataSource(dataSource); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.dsvars[dsVar]; !ok {
		return fmt.Errorf("bis: no data source variable %s", dsVar)
	}
	st.dsvars[dsVar] = dataSource
	return nil
}

// resolveDB resolves a data source variable to its database.
func (st *state) resolveDB(ctx *engine.Ctx, dsVar string) (*sqldb.DB, error) {
	st.mu.Lock()
	dsName, ok := st.dsvars[dsVar]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("bis: no data source variable %s", dsVar)
	}
	return ctx.Engine.DataSource(dsName)
}

// sessionFor returns the session to use for db under the current
// transaction policy:
//
//   - short-running process: all SQL and retrieve-set activities share one
//     transaction per data source, opened on first use and ended when the
//     process completes;
//   - long-running process: autocommit per activity, unless inside an
//     atomic SQL sequence, which opens a transaction that the sequence
//     commits (or rolls back on fault).
func (st *state) sessionFor(db *sqldb.DB) *sqldb.Session {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[db]
	if !ok {
		s = db.Session()
		if st.runCtx != nil {
			// Deadline propagation: the instance's budget gates every
			// statement boundary of its sessions.
			s.BindContext(st.runCtx)
		}
		st.sessions[db] = s
	}
	needTxn := st.mode == engine.ShortRunning || st.atomic > 0
	if needTxn && !st.inTxn[db] {
		if _, err := s.Exec("BEGIN"); err == nil {
			st.inTxn[db] = true
			st.journalTxn(journal.KindTxnBegin, st.modeLabelLocked())
		}
	}
	return s
}

// transactional reports whether SQL activities currently participate in a
// surrounding transaction (short-running process or open atomic region) —
// the condition under which per-statement retries are suppressed.
func (st *state) transactional() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.mode == engine.ShortRunning || st.atomic > 0
}

// modeLabel describes the reason SQL statements are transactional right now.
func (st *state) modeLabel() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.modeLabelLocked()
}

func (st *state) modeLabelLocked() string {
	if st.mode == engine.ShortRunning {
		return "short-running"
	}
	if st.atomic > 0 {
		return "atomic-sequence"
	}
	return "long-running"
}

// enterAtomic begins an atomic SQL sequence region.
func (st *state) enterAtomic() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.atomic++
}

// exitAtomic ends an atomic region, committing (or rolling back) every
// transaction opened inside it. Short-running processes already run in a
// single process-wide transaction, so nothing is ended early. A
// simulated crash skips the boundary entirely: a dead process commits
// nothing, journals nothing, and the crash hook (abort) models the
// server-side rollback of its dangling connections.
func (st *state) exitAtomic(fault error) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.atomic--
	if journal.IsCrash(fault) {
		return nil
	}
	if st.mode == engine.ShortRunning || st.atomic > 0 {
		return nil
	}
	var firstErr error
	for db, s := range st.sessions {
		if !st.inTxn[db] {
			continue
		}
		if fault != nil {
			s.Rollback()
			st.journalTxn(journal.KindTxnRollback, "atomic-sequence")
		} else if _, err := s.Exec("COMMIT"); err != nil {
			// A failed commit leaves the transaction in doubt; resolve
			// it by rolling back so a unit-of-work retry starts from a
			// clean state instead of replaying on top of live changes.
			s.Rollback()
			st.journalTxn(journal.KindTxnRollback, "atomic-sequence")
			if firstErr == nil {
				firstErr = err
			}
		} else {
			st.journalTxn(journal.KindTxnCommit, "atomic-sequence")
		}
		st.inTxn[db] = false
	}
	return firstErr
}

// finish ends all open process-wide transactions at instance completion.
func (st *state) finish(fault error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for db, s := range st.sessions {
		if !st.inTxn[db] {
			continue
		}
		if fault != nil {
			s.Rollback()
			st.journalTxn(journal.KindTxnRollback, "short-running")
		} else if _, err := s.Exec("COMMIT"); err != nil {
			s.Rollback() // resolve the in-doubt transaction
			st.journalTxn(journal.KindTxnRollback, "short-running")
		} else {
			st.journalTxn(journal.KindTxnCommit, "short-running")
		}
		st.inTxn[db] = false
	}
}

// abort models what the database does when the process dies: every open
// transaction's connection is gone, so the server rolls the work back.
// Nothing is journaled — a crashed process cannot write — which is
// exactly why the journal scan treats an open transaction at the end of
// history as rolled back (its pending SQL memos are dropped and the
// unit of work re-runs on recovery).
func (st *state) abort() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for db, s := range st.sessions {
		if st.inTxn[db] {
			s.Rollback()
			st.inTxn[db] = false
		}
	}
}

// substituteSQL rewrites #name# placeholders: set references become their
// bound table names; scalar process variables become bound parameters.
func substituteSQL(ctx *engine.Ctx, st *state, sql string) (string, []sqldb.Value, error) {
	if strings.IndexByte(sql, '#') < 0 {
		return sql, nil, nil // nothing to substitute; keep the cached text
	}
	var out strings.Builder
	out.Grow(len(sql))
	var params []sqldb.Value
	for {
		i := strings.IndexByte(sql, '#')
		if i < 0 {
			out.WriteString(sql)
			break
		}
		j := strings.IndexByte(sql[i+1:], '#')
		if j < 0 {
			return "", nil, fmt.Errorf("bis: unterminated #variable# reference in SQL")
		}
		name := sql[i+1 : i+1+j]
		out.WriteString(sql[:i])
		sql = sql[i+j+2:]
		st.mu.Lock()
		ref, isRef := st.refs[name]
		st.mu.Unlock()
		if isRef {
			if ref.Table == "" {
				return "", nil, fmt.Errorf("bis: set reference %s is not bound to a table", name)
			}
			out.WriteString(ref.Table)
			continue
		}
		v, err := ctx.Variable(name)
		if err != nil {
			return "", nil, fmt.Errorf("bis: #%s#: %w", name, err)
		}
		out.WriteString("?")
		params = append(params, scalarValue(v.String()))
	}
	return out.String(), params, nil
}

// scalarValue converts a process variable's string to the most specific
// SQL value so comparisons against numeric columns behave naturally.
// numericLead reports whether s can possibly parse as a number — a
// cheap gate that keeps the common non-numeric case from allocating
// strconv syntax errors on every variable substitution.
func numericLead(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9')
}

func scalarValue(s string) sqldb.Value {
	if !numericLead(s) {
		switch s {
		case "true", "TRUE":
			return sqldb.Bool(true)
		case "false", "FALSE":
			return sqldb.Bool(false)
		}
		return sqldb.Str(s)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return sqldb.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return sqldb.Float(f)
	}
	switch s {
	case "true", "TRUE":
		return sqldb.Bool(true)
	case "false", "FALSE":
		return sqldb.Bool(false)
	}
	return sqldb.Str(s)
}
