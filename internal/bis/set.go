package bis

import (
	"fmt"

	"wfsql/internal/engine"
	"wfsql/internal/rowset"
	"wfsql/internal/xdm"
)

// This file provides the set-variable workarounds the paper attributes to
// BIS: cursor functionality built from a while activity plus a
// Java-Snippet (Sequential Set Access Pattern), and snippet-based tuple
// insertion/deletion (the parts of the Tuple IUD Pattern that assign
// activities cannot express).

// CursorLoop builds the paper's cursor workaround: a while activity whose
// body first binds the next tuple of the set variable to currentVar via a
// snippet, then runs the given body. posVar is a scalar variable holding
// the 1-based cursor position and must be declared by the process.
func CursorLoop(name, setVar, currentVar, posVar string, body engine.Activity) engine.Activity {
	bind := engine.NewSnippet(name+"_bind", func(ctx *engine.Ctx) error {
		sv, err := ctx.Variable(setVar)
		if err != nil {
			return err
		}
		pos, err := ctx.Inst.MustVariable(posVar).Int()
		if err != nil {
			return err
		}
		row := rowset.Row(sv.Node(), int(pos)-1)
		if row == nil {
			return fmt.Errorf("bis: cursor position %d out of range in %s", pos, setVar)
		}
		return ctx.SetNode(currentVar, row.Clone())
	})
	advance := engine.NewSnippet(name+"_advance", func(ctx *engine.Ctx) error {
		pos, err := ctx.Inst.MustVariable(posVar).Int()
		if err != nil {
			return err
		}
		return ctx.SetScalar(posVar, fmt.Sprint(pos+1))
	})
	cond := engine.Cond(fmt.Sprintf("$%s <= count($%s/Row)", posVar, setVar))
	return engine.NewSequence(name,
		engine.NewSnippet(name+"_init", func(ctx *engine.Ctx) error {
			return ctx.SetScalar(posVar, "1")
		}),
		engine.NewWhile(name+"_while", cond,
			engine.NewSequence(name+"_iteration", bind, body, advance)),
	)
}

// InsertTuple appends a tuple to a set variable (snippet workaround for
// the insert part of the Tuple IUD Pattern).
func InsertTuple(ctx *engine.Ctx, setVar string, columns, values []string) error {
	sv, err := ctx.Variable(setVar)
	if err != nil {
		return err
	}
	if sv.Node() == nil {
		sv.SetNode(xdm.NewElement(rowset.RootElement))
	}
	_, err = rowset.AppendRow(sv.Node(), columns, values)
	return err
}

// DeleteTuple removes the i-th (0-based) tuple from a set variable
// (snippet workaround for the delete part of the Tuple IUD Pattern).
func DeleteTuple(ctx *engine.Ctx, setVar string, i int) error {
	sv, err := ctx.Variable(setVar)
	if err != nil {
		return err
	}
	if sv.Node() == nil {
		return fmt.Errorf("bis: set variable %s is empty", setVar)
	}
	return rowset.DeleteRow(sv.Node(), i)
}

// TupleCount returns the number of tuples in a set variable.
func TupleCount(ctx *engine.Ctx, setVar string) (int, error) {
	sv, err := ctx.Variable(setVar)
	if err != nil {
		return 0, err
	}
	if sv.Node() == nil {
		return 0, nil
	}
	return rowset.Count(sv.Node()), nil
}
