package bis

import (
	"fmt"
	"strings"
	"testing"

	"wfsql/internal/engine"
	"wfsql/internal/rowset"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

func ordersDB() *sqldb.DB {
	db := sqldb.Open("orderdb")
	db.MustExec(`CREATE TABLE Orders (
		OrderID INTEGER PRIMARY KEY, ItemID VARCHAR NOT NULL,
		Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL)`)
	db.MustExec(`INSERT INTO Orders VALUES
		(1, 'bolt', 10, TRUE), (2, 'bolt', 5, TRUE), (3, 'nut', 7, FALSE),
		(4, 'nut', 3, TRUE), (5, 'screw', 2, TRUE), (6, 'screw', 9, FALSE)`)
	db.MustExec(`CREATE TABLE OrderConfirmations (
		ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR)`)
	return db
}

func newEngine(db *sqldb.DB) (*engine.Engine, *wsbus.OrderFromSupplierService) {
	bus := wsbus.New()
	svc := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", svc.Handle)
	e := engine.New(bus)
	e.RegisterDataSource("orderdb", db)
	return e, svc
}

func TestSQLActivityDML(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("dml").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		Body(NewSQL("approve", "DS", "UPDATE #SR_Orders# SET Approved = TRUE WHERE Approved = FALSE")).
		Build()
	d, err := e.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	r := db.MustExec("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE")
	if r.Rows[0][0].I != 6 {
		t.Fatalf("approved count: %v", r.Rows[0][0])
	}
}

func TestSQLActivityHostVariables(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("host").
		DataSourceVariable("DS", "orderdb").
		Variable("minQty", "5").
		Variable("item", "bolt").
		InputSetReference("SR_Orders", "Orders").
		Body(NewSQL("del", "DS",
			"DELETE FROM #SR_Orders# WHERE ItemID = #item# AND Quantity >= #minQty#")).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	r := db.MustExec("SELECT COUNT(*) FROM Orders")
	if r.Rows[0][0].I != 4 {
		t.Fatalf("rows after parametrized delete: %v", r.Rows[0][0])
	}
}

func TestResultSetReferenceStaysExternal(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	db.ResetStats()
	var boundTable string
	p := NewProcess("queryref").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		ResultSetReference("SR_ItemList").
		Body(engine.NewSequence("main",
			NewSQL("SQL1", "DS",
				`SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders#
				 WHERE Approved = TRUE GROUP BY ItemID`).Into("SR_ItemList"),
			JavaSnippet("inspect", func(ctx *engine.Ctx) error {
				ref, err := SetReference(ctx, "SR_ItemList")
				if err != nil {
					return err
				}
				boundTable = ref.Table
				return nil
			}),
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if boundTable == "" || !strings.HasPrefix(boundTable, "SR_ItemList_i") {
		t.Fatalf("generated table name: %q", boundTable)
	}
	// The result was materialized in the data source, and the result table
	// is dropped at the end of the workflow (default cleanup).
	if db.HasTable(boundTable) {
		t.Fatalf("result table %s should be dropped at workflow end", boundTable)
	}
	// No result-set bytes entered the process space.
	if st := db.Stats(); st.BytesReturned != 0 {
		t.Fatalf("result bytes leaked to process space: %d", st.BytesReturned)
	}
}

func TestRetrieveSetMaterializes(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	var count int
	p := NewProcess("retrieve").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		ResultSetReference("SR_ItemList").
		XMLVariable("SV_ItemList", "").
		Body(engine.NewSequence("main",
			NewSQL("SQL1", "DS",
				`SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders#
				 WHERE Approved = TRUE GROUP BY ItemID`).Into("SR_ItemList"),
			NewRetrieveSet("retrieveSet", "DS", "SR_ItemList", "SV_ItemList"),
			JavaSnippet("count", func(ctx *engine.Ctx) error {
				var err error
				count, err = TupleCount(ctx, "SV_ItemList")
				return err
			}),
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("materialized tuples: %d", count)
	}
}

// TestFigure4Workflow reproduces the paper's Figure 4 sample workflow on
// the BIS stack: SQL1 aggregates approved orders per item type into a
// result set reference, retrieve set materializes it, the while+snippet
// cursor iterates, invoke orders from the supplier, and SQL2 records each
// confirmation.
func TestFigure4Workflow(t *testing.T) {
	db := ordersDB()
	e, svc := newEngine(db)

	body := engine.NewSequence("main",
		NewSQL("SQL1", "DS",
			`SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders#
			 WHERE Approved = TRUE GROUP BY ItemID`).Into("SR_ItemList"),
		NewRetrieveSet("retrieveSet", "DS", "SR_ItemList", "SV_ItemList"),
		CursorLoop("cursor", "SV_ItemList", "CurrentItem", "pos",
			engine.NewSequence("body",
				engine.NewAssign("extract").
					Copy("$CurrentItem/ItemID", "CurrentItemID").
					Copy("$CurrentItem/Quantity", "CurrentQuantity"),
				engine.NewInvoke("invoke", "OrderFromSupplier").
					In("ItemID", "$CurrentItem/ItemID").
					In("Quantity", "$CurrentItem/Quantity").
					Out("OrderConfirmation", "OrderConfirmation"),
				NewSQL("SQL2", "DS",
					`INSERT INTO #SR_OrderConfirmations# (ItemID, Quantity, Confirmation)
					 VALUES (#CurrentItemID#, #CurrentQuantity#, #OrderConfirmation#)`),
			)),
	)

	p := NewProcess("Fig4").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		InputSetReference("SR_OrderConfirmations", "OrderConfirmations").
		ResultSetReference("SR_ItemList").
		XMLVariable("SV_ItemList", "").
		XMLVariable("CurrentItem", "").
		Variable("CurrentItemID", "").
		Variable("CurrentQuantity", "").
		Variable("OrderConfirmation", "").
		Variable("pos", "1").
		Body(body).
		Build()

	d, err := e.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}

	// Aggregated, approved quantities: bolt 15, nut 3, screw 2.
	r := db.MustExec("SELECT ItemID, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemID")
	if len(r.Rows) != 3 {
		t.Fatalf("confirmations: %d", len(r.Rows))
	}
	wants := map[string]int64{"bolt": 15, "nut": 3, "screw": 2}
	for _, row := range r.Rows {
		item := row[0].S
		if row[1].I != wants[item] {
			t.Errorf("%s quantity: %d, want %d", item, row[1].I, wants[item])
		}
		wantConf := fmt.Sprintf("CONFIRMED:%s:%d", item, wants[item])
		if row[2].S != wantConf {
			t.Errorf("%s confirmation: %q, want %q", item, row[2].S, wantConf)
		}
		if svc.Ordered(item) != wants[item] {
			t.Errorf("%s supplier total: %d", item, svc.Ordered(item))
		}
	}
}

func TestDynamicDataSourceRebinding(t *testing.T) {
	testDB := sqldb.Open("testenv")
	prodDB := sqldb.Open("prodenv")
	for _, db := range []*sqldb.DB{testDB, prodDB} {
		db.MustExec("CREATE TABLE Log (msg VARCHAR)")
	}
	e := engine.New(nil)
	e.RegisterDataSource("testenv", testDB)
	e.RegisterDataSource("prodenv", prodDB)

	body := engine.NewSequence("main",
		NewSQL("log1", "DS", "INSERT INTO Log VALUES ('first')"),
		JavaSnippet("switch", func(ctx *engine.Ctx) error {
			return RebindDataSource(ctx, "DS", "prodenv")
		}),
		NewSQL("log2", "DS", "INSERT INTO Log VALUES ('second')"),
	)
	p := NewProcess("rebind").
		DataSourceVariable("DS", "testenv").
		Body(body).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if n := testDB.MustExec("SELECT COUNT(*) FROM Log").Rows[0][0].I; n != 1 {
		t.Fatalf("test env rows: %d", n)
	}
	if n := prodDB.MustExec("SELECT COUNT(*) FROM Log").Rows[0][0].I; n != 1 {
		t.Fatalf("prod env rows: %d", n)
	}
}

func TestRebindErrors(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("rebindErr").
		DataSourceVariable("DS", "orderdb").
		Body(JavaSnippet("bad", func(ctx *engine.Ctx) error {
			if err := RebindDataSource(ctx, "DS", "nope"); err == nil {
				t.Error("expected unknown data source error")
			}
			if err := RebindDataSource(ctx, "NotAVar", "orderdb"); err == nil {
				t.Error("expected unknown ds variable error")
			}
			return nil
		})).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPreparationAndCleanup(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	sawDuring := false
	p := NewProcess("lifecycle").
		DataSourceVariable("DS", "orderdb").
		Preparation("DS", "CREATE TABLE Staging (x INTEGER)").
		Cleanup("DS", "DROP TABLE Staging").
		Body(JavaSnippet("check", func(ctx *engine.Ctx) error {
			sawDuring = db.HasTable("Staging")
			return nil
		})).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !sawDuring {
		t.Fatal("preparation table missing during execution")
	}
	if db.HasTable("Staging") {
		t.Fatal("cleanup did not drop the table")
	}
}

func TestCleanupRunsOnFault(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("faulty").
		DataSourceVariable("DS", "orderdb").
		Preparation("DS", "CREATE TABLE Temp1 (x INTEGER)").
		Cleanup("DS", "DROP TABLE IF EXISTS Temp1").
		Body(&engine.Throw{ActivityName: "boom", FaultName: "err"}).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected fault")
	}
	if db.HasTable("Temp1") {
		t.Fatal("cleanup must run even on fault")
	}
}

func TestAtomicSQLSequenceRollsBackOnFault(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("atomic").
		Mode(engine.LongRunning).
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		Body(NewAtomicSequence("atomicSeq",
			NewSQL("del", "DS", "DELETE FROM #SR_Orders#"),
			NewSQL("bad", "DS", "INSERT INTO NoSuchTable VALUES (1)"),
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected fault")
	}
	if n := db.MustExec("SELECT COUNT(*) FROM Orders").Rows[0][0].I; n != 6 {
		t.Fatalf("atomic sequence leaked partial work: %d rows", n)
	}
}

func TestAtomicSQLSequenceCommits(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("atomicOK").
		Mode(engine.LongRunning).
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		Body(NewAtomicSequence("atomicSeq",
			NewSQL("upd1", "DS", "UPDATE #SR_Orders# SET Quantity = Quantity + 1"),
			NewSQL("upd2", "DS", "UPDATE #SR_Orders# SET Quantity = Quantity + 1"),
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if n := db.MustExec("SELECT SUM(Quantity) FROM Orders").Rows[0][0].I; n != 48 {
		t.Fatalf("sum after atomic updates: %d", n)
	}
}

func TestShortRunningProcessIsSingleTransaction(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	// In a short-running process all SQL activities run in one transaction:
	// a fault rolls back everything without an explicit atomic sequence.
	p := NewProcess("short").
		Mode(engine.ShortRunning).
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		Body(engine.NewSequence("main",
			NewSQL("del", "DS", "DELETE FROM #SR_Orders#"),
			&engine.Throw{ActivityName: "boom", FaultName: "late"},
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected fault")
	}
	if n := db.MustExec("SELECT COUNT(*) FROM Orders").Rows[0][0].I; n != 6 {
		t.Fatalf("short-running fault must roll back all SQL work: %d rows", n)
	}
}

func TestLongRunningCommitsPerActivity(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("long").
		Mode(engine.LongRunning).
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		Body(engine.NewSequence("main",
			NewSQL("del", "DS", "DELETE FROM #SR_Orders# WHERE OrderID = 1"),
			&engine.Throw{ActivityName: "boom", FaultName: "late"},
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected fault")
	}
	if n := db.MustExec("SELECT COUNT(*) FROM Orders").Rows[0][0].I; n != 5 {
		t.Fatalf("long-running SQL activity should have committed: %d rows", n)
	}
}

func TestTupleIUDWorkarounds(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	var after int
	var firstItem string
	p := NewProcess("tuples").
		DataSourceVariable("DS", "orderdb").
		XMLVariable("SV", `<RowSet><Row num="1"><ItemID>bolt</ItemID><Quantity>1</Quantity></Row></RowSet>`).
		Body(engine.NewSequence("main",
			JavaSnippet("insert", func(ctx *engine.Ctx) error {
				return InsertTuple(ctx, "SV", []string{"ItemID", "Quantity"}, []string{"nut", "9"})
			}),
			// Assign + XPath covers update (the abstract-level part).
			engine.NewAssign("update").CopyTo("'washer'", "SV", "Row[1]/ItemID"),
			JavaSnippet("delete", func(ctx *engine.Ctx) error {
				return DeleteTuple(ctx, "SV", 1)
			}),
			JavaSnippet("verify", func(ctx *engine.Ctx) error {
				var err error
				after, err = TupleCount(ctx, "SV")
				if err != nil {
					return err
				}
				sv, _ := ctx.Variable("SV")
				firstItem = rowset.Field(rowset.Row(sv.Node(), 0), "ItemID")
				return nil
			}),
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if after != 1 {
		t.Fatalf("tuples after IUD: %d", after)
	}
	if firstItem != "washer" {
		t.Fatalf("first item after update: %q", firstItem)
	}
}

func TestSynchronizationWorkaround(t *testing.T) {
	// The paper: "one may specify appropriate UPDATE statements in an SQL
	// activity in order to realize the Synchronization Pattern."
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("sync").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		XMLVariable("SV", "").
		ResultSetReference("SR_Work").
		Variable("newQty", "").
		Body(engine.NewSequence("main",
			NewSQL("q", "DS", "SELECT OrderID, Quantity FROM #SR_Orders# WHERE OrderID = 1").Into("SR_Work"),
			NewRetrieveSet("r", "DS", "SR_Work", "SV"),
			// Local processing: double the quantity in the cache.
			JavaSnippet("double", func(ctx *engine.Ctx) error {
				sv, _ := ctx.Variable("SV")
				row := rowset.Row(sv.Node(), 0)
				q := rowset.Field(row, "Quantity")
				rowset.SetField(row, "Quantity", q+"0") // 10 -> 100
				return ctx.SetScalar("newQty", q+"0")
			}),
			// Synchronization workaround: push the change back via UPDATE.
			NewSQL("push", "DS", "UPDATE #SR_Orders# SET Quantity = #newQty# WHERE OrderID = 1"),
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if n := db.MustExec("SELECT Quantity FROM Orders WHERE OrderID = 1").Rows[0][0].I; n != 100 {
		t.Fatalf("synchronized quantity: %d", n)
	}
}

func TestSetRefLifecycleStatements(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("reflc").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Stage", "StageTable").
		SetRefLifecycle("SR_Stage",
			"CREATE TABLE IF NOT EXISTS {TABLE} (x INTEGER)",
			"DROP TABLE IF EXISTS {TABLE}").
		Body(NewSQL("fill", "DS", "INSERT INTO #SR_Stage# VALUES (1)")).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if db.HasTable("StageTable") {
		t.Fatal("set-reference cleanup did not drop the table")
	}
}

func TestStoredProcedureIntoResultRef(t *testing.T) {
	db := ordersDB()
	db.MustExec(`CREATE PROCEDURE totals () AS
		'SELECT ItemID, SUM(Quantity) AS Total FROM Orders GROUP BY ItemID ORDER BY ItemID'`)
	e, _ := newEngine(db)
	var rows int64
	p := NewProcess("sp").
		DataSourceVariable("DS", "orderdb").
		ResultSetReference("SR_R").
		Body(engine.NewSequence("m",
			NewSQL("call", "DS", "CALL totals()").Into("SR_R"),
			JavaSnippet("check", func(ctx *engine.Ctx) error {
				ref, err := SetReference(ctx, "SR_R")
				if err != nil {
					return err
				}
				r := db.MustExec("SELECT COUNT(*) FROM " + ref.Table)
				rows = r.Rows[0][0].I
				// The materialized table has typed columns.
				r2 := db.MustExec("SELECT Total FROM " + ref.Table + " WHERE ItemID = 'bolt'")
				if r2.Rows[0][0].I != 15 {
					return fmt.Errorf("typed materialization: %v", r2.Rows[0][0])
				}
				return nil
			}))).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Fatalf("procedure result rows: %d", rows)
	}
}

func TestResultRefRejectsNonQuery(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("bad").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		ResultSetReference("SR_R").
		Body(NewSQL("upd", "DS", "UPDATE #SR_Orders# SET Quantity = 1").Into("SR_R")).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("DML into a result ref must fail")
	}
	// Filling an input ref is also invalid.
	p2 := NewProcess("bad2").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		Body(NewSQL("q", "DS", "SELECT * FROM #SR_Orders#").Into("SR_Orders")).
		Build()
	d2, _ := e.Deploy(p2)
	if _, err := d2.Run(nil); err == nil {
		t.Fatal("query into an input ref must fail")
	}
}

func TestBindSetReferenceAtRuntime(t *testing.T) {
	db := ordersDB()
	db.MustExec("CREATE TABLE OrdersArchive (OrderID INTEGER, ItemID VARCHAR, Quantity INTEGER, Approved BOOLEAN)")
	db.MustExec("INSERT INTO OrdersArchive VALUES (100, 'old', 1, TRUE)")
	e, _ := newEngine(db)
	var count int64
	p := NewProcess("rebindref").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_T", "Orders").
		ResultSetReference("SR_R").
		Body(engine.NewSequence("m",
			JavaSnippet("switch", func(ctx *engine.Ctx) error {
				// Dynamically choose at runtime which table to use.
				return BindSetReference(ctx, "SR_T", "OrdersArchive")
			}),
			NewSQL("q", "DS", "SELECT COUNT(*) AS n FROM #SR_T#").Into("SR_R"),
			JavaSnippet("read", func(ctx *engine.Ctx) error {
				ref, _ := SetReference(ctx, "SR_R")
				count = db.MustExec("SELECT n FROM " + ref.Table).Rows[0][0].I
				return nil
			}))).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("rebound set reference count: %d", count)
	}
	// Unknown reference errors.
	p2 := NewProcess("badref").
		DataSourceVariable("DS", "orderdb").
		Body(JavaSnippet("bad", func(ctx *engine.Ctx) error {
			return BindSetReference(ctx, "Missing", "x")
		})).
		Build()
	d2, _ := e.Deploy(p2)
	if _, err := d2.Run(nil); err == nil {
		t.Fatal("expected unknown set reference error")
	}
}

func TestScalarValueConversion(t *testing.T) {
	cases := map[string]sqldb.Kind{
		"42":    sqldb.KindInt,
		"-7":    sqldb.KindInt,
		"3.5":   sqldb.KindFloat,
		"true":  sqldb.KindBool,
		"FALSE": sqldb.KindBool,
		"hello": sqldb.KindString,
		"":      sqldb.KindString,
	}
	for in, want := range cases {
		if got := scalarValue(in).K; got != want {
			t.Errorf("scalarValue(%q) kind = %v, want %v", in, got, want)
		}
	}
}

func TestStateRequiresBuilder(t *testing.T) {
	e := engine.New(nil)
	p := &engine.Process{Name: "raw", Body: NewSQL("q", "DS", "SELECT 1")}
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err == nil || !strings.Contains(err.Error(), "ProcessBuilder") {
		t.Fatalf("expected builder error, got %v", err)
	}
}

func TestUnterminatedHostVariable(t *testing.T) {
	db := ordersDB()
	e, _ := newEngine(db)
	p := NewProcess("badsql").
		DataSourceVariable("DS", "orderdb").
		Body(NewSQL("q", "DS", "SELECT #oops FROM Orders")).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected unterminated placeholder error")
	}
}
