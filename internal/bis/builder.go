package bis

import (
	"fmt"
	"strings"

	"wfsql/internal/engine"
	"wfsql/internal/sqldb"
)

// ProcessBuilder plays the WebSphere Integration Developer role: it
// assembles a BPEL process model with BIS-specific artifacts — set
// reference variables, data source variables, and preparation/cleanup
// statements — and produces an engine.Process for deployment.
type ProcessBuilder struct {
	name        string
	mode        engine.TransactionMode
	vars        []engine.VarDecl
	refs        []*SetRef
	dsvars      map[string]string
	preparation []dsStatement
	cleanup     []dsStatement
	body        engine.Activity
	pattern     string
}

type dsStatement struct {
	dsVar string
	sql   string
}

// NewProcess starts building a BIS process.
func NewProcess(name string) *ProcessBuilder {
	return &ProcessBuilder{name: name, dsvars: map[string]string{}}
}

// Mode sets the process transaction mode (long-running by default).
func (b *ProcessBuilder) Mode(m engine.TransactionMode) *ProcessBuilder {
	b.mode = m
	return b
}

// Variable declares a scalar process variable.
func (b *ProcessBuilder) Variable(name, init string) *ProcessBuilder {
	b.vars = append(b.vars, engine.VarDecl{Name: name, Kind: engine.ScalarVar, Init: init})
	return b
}

// XMLVariable declares an XML process variable (e.g. a set variable).
func (b *ProcessBuilder) XMLVariable(name, initXML string) *ProcessBuilder {
	b.vars = append(b.vars, engine.VarDecl{Name: name, Kind: engine.XMLVar, InitXML: initXML})
	return b
}

// DataSourceVariable declares a data source variable holding the
// connection reference; the bound data source can be changed at deploy
// time or runtime without redeploying the process.
func (b *ProcessBuilder) DataSourceVariable(name, dataSource string) *ProcessBuilder {
	b.dsvars[name] = dataSource
	return b
}

// InputSetReference declares an input set reference bound to a table.
func (b *ProcessBuilder) InputSetReference(name, table string) *ProcessBuilder {
	b.refs = append(b.refs, &SetRef{Name: name, Kind: InputSetRef, Table: table})
	return b
}

// ResultSetReference declares a result set reference. Its table is
// generated per instance when a SQL activity fills it; cleanup drops it at
// the end of the workflow.
func (b *ProcessBuilder) ResultSetReference(name string) *ProcessBuilder {
	b.refs = append(b.refs, &SetRef{Name: name, Kind: ResultSetRef})
	return b
}

// SetRefLifecycle attaches preparation and cleanup statements to a set
// reference ({TABLE} is replaced with the bound table name).
func (b *ProcessBuilder) SetRefLifecycle(name, preparation, cleanup string) *ProcessBuilder {
	for _, r := range b.refs {
		if r.Name == name {
			r.Preparation = preparation
			r.Cleanup = cleanup
		}
	}
	return b
}

// Preparation adds a data source preparation statement run before the
// process body (DDL for managing database entities).
func (b *ProcessBuilder) Preparation(dsVar, sql string) *ProcessBuilder {
	b.preparation = append(b.preparation, dsStatement{dsVar: dsVar, sql: sql})
	return b
}

// Cleanup adds a data source cleanup statement run after process
// completion (also on fault).
func (b *ProcessBuilder) Cleanup(dsVar, sql string) *ProcessBuilder {
	b.cleanup = append(b.cleanup, dsStatement{dsVar: dsVar, sql: sql})
	return b
}

// Body sets the process body.
func (b *ProcessBuilder) Body(a engine.Activity) *ProcessBuilder {
	b.body = a
	return b
}

// Pattern labels the process with the paper's SQL-support pattern id it
// exercises (e.g. "P4"); spans emitted for its instances carry the
// label.
func (b *ProcessBuilder) Pattern(id string) *ProcessBuilder {
	b.pattern = id
	return b
}

// ProcessName returns the process name.
func (b *ProcessBuilder) ProcessName() string { return b.name }

// TransactionMode returns the configured mode.
func (b *ProcessBuilder) TransactionMode() engine.TransactionMode { return b.mode }

// VariableDecls returns the declared process variables.
func (b *ProcessBuilder) VariableDecls() []engine.VarDecl {
	return append([]engine.VarDecl(nil), b.vars...)
}

// SetRefs returns the declared set references.
func (b *ProcessBuilder) SetRefs() []*SetRef {
	out := make([]*SetRef, len(b.refs))
	for i, r := range b.refs {
		cp := *r
		out[i] = &cp
	}
	return out
}

// DataSourceVars returns the data source variable bindings.
func (b *ProcessBuilder) DataSourceVars() map[string]string {
	out := make(map[string]string, len(b.dsvars))
	for k, v := range b.dsvars {
		out[k] = v
	}
	return out
}

// LifecycleStatements returns the process-level preparation and cleanup
// statements as (dsVar, sql) pairs.
func (b *ProcessBuilder) LifecycleStatements() (preparation, cleanup [][2]string) {
	for _, p := range b.preparation {
		preparation = append(preparation, [2]string{p.dsVar, p.sql})
	}
	for _, c := range b.cleanup {
		cleanup = append(cleanup, [2]string{c.dsVar, c.sql})
	}
	return
}

// BodyActivity returns the configured body.
func (b *ProcessBuilder) BodyActivity() engine.Activity { return b.body }

// Build produces the deployable process model.
func (b *ProcessBuilder) Build() *engine.Process {
	p := &engine.Process{
		Name:      b.name,
		Variables: b.vars,
		Body:      b.body,
		Mode:      b.mode,
		Stack:     "BIS",
		Pattern:   b.pattern,
	}
	refs := b.refs
	dsvars := b.dsvars
	prep, clean := b.preparation, b.cleanup
	p.OnInstanceStart = append(p.OnInstanceStart, func(ctx *engine.Ctx) error {
		st := &state{
			refs:     map[string]*SetRef{},
			dsvars:   map[string]string{},
			sessions: map[*sqldb.DB]*sqldb.Session{},
			inTxn:    map[*sqldb.DB]bool{},
			mode:     p.Mode,
		}
		for _, r := range refs {
			cp := *r // per-instance copy
			st.refs[r.Name] = &cp
		}
		for k, v := range dsvars {
			st.dsvars[k] = v
		}
		st.jrec = ctx.Engine.Journal()
		st.instID = ctx.Inst.ID
		st.runCtx = ctx.Context()
		ctx.Inst.SetContext(stateKey, st)
		// On simulated process death the database rolls back whatever
		// transactions the instance still had open (connection loss),
		// mirroring what recovery assumes about un-journaled COMMITs.
		ctx.Inst.OnCrash(st.abort)

		// Preparation statements run before the body, outside the process
		// transaction (they manage database entities, not business data).
		for _, ps := range prep {
			if err := runLifecycleStatement(ctx, st, ps, nil); err != nil {
				return fmt.Errorf("bis: preparation: %w", err)
			}
		}
		for _, r := range st.refs {
			if r.Preparation != "" && r.Table != "" {
				if err := runLifecycleStatement(ctx, st, dsStatement{dsVar: firstDSVar(st), sql: r.Preparation}, r); err != nil {
					return fmt.Errorf("bis: set reference %s preparation: %w", r.Name, err)
				}
			}
		}

		// Completion: end process-wide transactions, then run cleanup.
		ctx.Inst.OnComplete(func(fault error) {
			st.finish(fault)
			for _, r := range st.refs {
				if r.Cleanup != "" && r.Table != "" {
					runLifecycleStatement(ctx, st, dsStatement{dsVar: firstDSVar(st), sql: r.Cleanup}, r)
				}
			}
			for _, cs := range clean {
				runLifecycleStatement(ctx, st, cs, nil)
			}
		})
		return nil
	})
	return p
}

// firstDSVar returns an arbitrary data source variable name (set-reference
// lifecycle statements run against the process's data source; processes
// in this reproduction use one data source variable per source).
func firstDSVar(st *state) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	for k := range st.dsvars {
		return k
	}
	return ""
}

func runLifecycleStatement(ctx *engine.Ctx, st *state, stmt dsStatement, ref *SetRef) error {
	db, err := st.resolveDB(ctx, stmt.dsVar)
	if err != nil {
		return err
	}
	sql := stmt.sql
	if ref != nil {
		sql = strings.ReplaceAll(sql, "{TABLE}", ref.Table)
	}
	// Lifecycle statements deliberately bypass the per-instance session
	// (state.sessionFor): entity management must be independent of the
	// process transaction, so each runs on a fresh single-statement
	// session that never holds transaction state. Everything else the
	// stack executes goes through the instance session. They also bypass
	// the shared plan cache: the substituted {TABLE} name is unique to
	// this instance, so the text can never hit — a one-shot prepared
	// statement avoids churning the LRU with dead entries.
	ps, err := db.Session().Prepare(sql)
	if err != nil {
		return err
	}
	_, err = ps.Exec()
	return err
}
