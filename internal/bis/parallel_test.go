package bis

import (
	"fmt"
	"sync"
	"testing"

	"wfsql/internal/engine"
)

// TestParallelFlowBranchesShareInstanceSession pins the
// one-session-per-instance contract under BPEL Flow concurrency: all SQL
// activities of one instance route through state.sessionFor, so parallel
// Flow branches issue their statements on the *same* session from
// different goroutines. The session's internal mutex must serialize them
// without losing statements or corrupting transaction state — this test
// is only meaningful under -race.
func TestParallelFlowBranchesShareInstanceSession(t *testing.T) {
	const branches = 8
	for _, mode := range []engine.TransactionMode{engine.LongRunning, engine.ShortRunning} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			db := ordersDB()
			e, _ := newEngine(db)

			var children []engine.Activity
			for i := 0; i < branches; i++ {
				children = append(children, NewSQL(fmt.Sprintf("ins%d", i), "DS", fmt.Sprintf(
					"INSERT INTO OrderConfirmations VALUES ('branch%d', %d, 'ok')", i, i)))
				children = append(children, NewSQL(fmt.Sprintf("sel%d", i), "DS",
					"SELECT COUNT(*) FROM Orders WHERE Approved = TRUE"))
			}
			p := NewProcess("parflow").
				Mode(mode).
				DataSourceVariable("DS", "orderdb").
				Body(engine.NewFlow("fanout", children...)).
				Build()
			d, err := e.Deploy(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Run(nil); err != nil {
				t.Fatal(err)
			}
			r := db.MustExec("SELECT COUNT(*) FROM OrderConfirmations")
			if got := r.Rows[0][0].I; got != branches {
				t.Fatalf("%v: %d confirmations, want %d (parallel branches lost statements)", mode, got, branches)
			}
		})
	}
}

// TestParallelInstancesDistinctSessions runs many BIS instances of the
// same deployed process concurrently — the scheduler's execution shape.
// Each instance gets its own state (and thus its own sessions), and the
// short-running process-wide transactions must commit exactly the rows
// their instance wrote.
func TestParallelInstancesDistinctSessions(t *testing.T) {
	const instances = 8
	db := ordersDB()
	e, _ := newEngine(db)

	p := NewProcess("parinst").
		Mode(engine.ShortRunning).
		DataSourceVariable("DS", "orderdb").
		Body(engine.NewSequence("body",
			NewSQL("ins", "DS", "INSERT INTO OrderConfirmations VALUES (#item#, 1, 'ok')"),
			NewSQL("sel", "DS", "SELECT COUNT(*) FROM Orders"),
		)).
		Variable("item", "seed").
		Build()
	d, err := e.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, instances)
	for i := 0; i < instances; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := d.Run(map[string]string{"item": fmt.Sprintf("inst%d", i)})
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	r := db.MustExec("SELECT COUNT(*) FROM OrderConfirmations")
	if got := r.Rows[0][0].I; got != instances {
		t.Fatalf("%d confirmations, want %d", got, instances)
	}
}
