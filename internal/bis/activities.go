package bis

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"wfsql/internal/engine"
	"wfsql/internal/journal"
	"wfsql/internal/resilience"
	"wfsql/internal/rowset"
	"wfsql/internal/sqldb"
)

// SQLActivity embeds a SQL statement that is sent to a database system and
// processed there. Queries, DML, DDL, and stored procedure calls are
// supported. A resulting data set is not passed to the process space: it
// remains in the data source, referenced by a result set reference.
type SQLActivity struct {
	ActivityName string
	DataSource   string // data source variable name
	SQL          string // statement with #var# / #setref# placeholders
	ResultRef    string // result set reference receiving a query/CALL result ("" for none)

	// Retry, when set, re-executes the statement on transient database
	// errors. Retries only apply while the activity runs in autocommit
	// mode (long-running process, outside any atomic SQL sequence): once
	// the statement participates in a surrounding transaction, a failed
	// statement poisons that transaction and recovery belongs to the
	// transaction boundary, so the policy is suppressed and a
	// "retry-suppressed" trace event records the decision.
	Retry *resilience.Policy
}

// NewSQL builds a SQL activity against a data source variable.
func NewSQL(name, dataSourceVar, sql string) *SQLActivity {
	return &SQLActivity{ActivityName: name, DataSource: dataSourceVar, SQL: sql}
}

// Into directs the activity's result set into a result set reference.
func (a *SQLActivity) Into(resultRef string) *SQLActivity {
	a.ResultRef = resultRef
	return a
}

// WithRetry attaches a retry policy for transient database faults.
func (a *SQLActivity) WithRetry(p *resilience.Policy) *SQLActivity {
	a.Retry = p
	return a
}

// Name implements engine.Activity.
func (a *SQLActivity) Name() string { return a.ActivityName }

// Execute implements engine.Activity. The statement (with its retry
// policy) runs as one journaled SQL effect: the memo records the bound
// result table (if any), so a recovered instance re-binds the set
// reference without re-executing the statement. The memo is durable
// immediately in autocommit mode; inside a transaction it stays pending
// in the journal until the COMMIT record lands, so un-committed work
// re-runs as a whole on recovery (unit-of-work semantics).
func (a *SQLActivity) Execute(ctx *engine.Ctx) error {
	st, err := getState(ctx)
	if err != nil {
		return err
	}
	effect := func() (map[string]string, error) {
		if err := a.executeLive(ctx, st); err != nil {
			return nil, err
		}
		memo := map[string]string{}
		if a.ResultRef != "" {
			if ref, err := SetReference(ctx, a.ResultRef); err == nil {
				st.mu.Lock()
				memo["table"] = ref.Table
				st.mu.Unlock()
			}
		}
		return memo, nil
	}
	replay := func(memo map[string]string) error {
		if a.ResultRef == "" || memo["table"] == "" {
			return nil
		}
		// The result table survived the crash (tables are entities, not
		// transaction-scoped rows): re-bind the reference and restore
		// the default cleanup so normal completion still drops it.
		ref, err := SetReference(ctx, a.ResultRef)
		if err != nil {
			return err
		}
		st.mu.Lock()
		ref.Table = memo["table"]
		if ref.Cleanup == "" {
			ref.Cleanup = "DROP TABLE IF EXISTS {TABLE}"
		}
		st.mu.Unlock()
		return nil
	}
	return ctx.RunEffect(a.ActivityName, journal.EffectSQL, effect, replay)
}

// executeLive performs the statement with retry handling (no journaling).
func (a *SQLActivity) executeLive(ctx *engine.Ctx, st *state) error {
	db, err := st.resolveDB(ctx, a.DataSource)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	sql, params, err := substituteSQL(ctx, st, a.SQL)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	sess := st.sessionFor(db)

	run := func() error { return a.runOnce(ctx, st, sess, sql, params) }

	if a.Retry == nil {
		return run()
	}
	if st.transactional() {
		// Inside a transaction a retry of the single statement is not
		// legal: the statement's effects (and the fault) belong to the
		// enclosing unit of work, which must roll back first. Defer to
		// the transaction boundary (atomic sequence or process end).
		ctx.Inst.RecordTrace(a.ActivityName, "retry-suppressed",
			fmt.Sprintf("statement participates in a transaction (%s mode)", st.modeLabel()))
		return run()
	}
	obs := sqlObserver(ctx, a.ActivityName, a.Retry)
	err = a.Retry.DoErr(obs, func(attempt int) error { return run() })
	if ab := resilience.Abandoned(err); ab != nil {
		return &engine.Fault{Name: engine.FaultRetryExhausted, Activity: a.ActivityName, Wrapped: ab}
	}
	return err
}

// runOnce performs one execution attempt of the activity's statement. For
// result set references the generated table is dropped first, so a retried
// attempt that failed halfway through materialization starts clean
// (idempotent re-execution).
func (a *SQLActivity) runOnce(ctx *engine.Ctx, st *state, sess *sqldb.Session, sql string, params []sqldb.Value) error {
	if a.ResultRef == "" {
		if _, err := sess.Exec(sql, params...); err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
		return nil
	}

	// Result handling: execute, then materialize the result *inside the
	// data source* as a per-instance table; only the reference enters the
	// process space.
	ref, err := SetReference(ctx, a.ResultRef)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	if ref.Kind != ResultSetRef {
		return fmt.Errorf("%s: %s is not a result set reference", a.ActivityName, a.ResultRef)
	}
	// The generated table's name is instance-unique, so its statements
	// can never hit the shared plan cache — run them as one-shot
	// prepared statements, which bypass the cache (and its LRU churn)
	// while still carrying text to the change stream.
	gen := ref.Name + "_i" + strconv.FormatInt(ctx.Inst.ID, 10)
	if err := execPrepared(sess, "DROP TABLE IF EXISTS "+gen); err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	trimmed := strings.TrimSpace(strings.ToUpper(sql))
	if strings.HasPrefix(trimmed, "SELECT") {
		ctas := "CREATE TABLE " + gen + " AS " + sql
		if err := execPrepared(sess, ctas, params...); err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
	} else if strings.HasPrefix(trimmed, "CALL") {
		res, err := sess.Exec(sql, params...)
		if err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
		if err := materializeAsTable(sess, gen, res); err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
	} else {
		return fmt.Errorf("%s: only queries and CALLs can fill a result set reference", a.ActivityName)
	}
	st.mu.Lock()
	ref.Table = gen
	if ref.Cleanup == "" {
		ref.Cleanup = "DROP TABLE IF EXISTS {TABLE}"
	}
	st.mu.Unlock()
	return nil
}

// sqlObserver surfaces retry attempts and backoff waits of an information
// service activity through the instance trace, mirroring what the engine's
// Invoke does for service calls.
func sqlObserver(ctx *engine.Ctx, name string, p *resilience.Policy) resilience.Observer {
	return resilience.Observer{
		OnAttempt: func(n, max int) {
			if max > 1 {
				ctx.Inst.RecordTrace(name, "attempt", fmt.Sprintf("%d/%d", n, max))
			}
		},
		OnFailure: func(n int, err error) {
			ctx.Inst.RecordTrace(name, "attempt-failed", fmt.Sprintf("attempt %d: %v", n, err))
		},
		OnBackoff: func(n int, d time.Duration) {
			ctx.Inst.RecordTrace(name, "backoff", fmt.Sprintf("after attempt %d, waiting %s", n, d))
		},
	}
}

// execPrepared runs one statement as a throwaway prepared statement:
// the path for instance-unique SQL text that would only pollute the
// shared plan cache. Change-stream capture still works — prepared
// statements carry their source text.
func execPrepared(sess *sqldb.Session, sql string, params ...sqldb.Value) error {
	ps, err := sess.Prepare(sql)
	if err != nil {
		return err
	}
	_, err = ps.Exec(params...)
	return err
}

// materializeAsTable stores an in-engine result set as a new table in the
// same database (used for stored procedure results bound to result refs).
// All rows load through ONE multi-row INSERT — the batch-exec path the
// engine's InsertStmt.Rows supports — instead of a per-row statement
// loop.
func materializeAsTable(sess *sqldb.Session, table string, res *sqldb.Result) error {
	if !res.IsQuery() {
		return fmt.Errorf("bis: statement produced no result set")
	}
	var cols []string
	for i, c := range res.Columns {
		typ := "VARCHAR"
		for _, row := range res.Rows {
			switch row[i].K {
			case sqldb.KindInt:
				typ = "INTEGER"
			case sqldb.KindFloat:
				typ = "FLOAT"
			case sqldb.KindBool:
				typ = "BOOLEAN"
			case sqldb.KindString:
				typ = "VARCHAR"
			default:
				continue
			}
			break
		}
		cols = append(cols, fmt.Sprintf("%s %s", c, typ))
	}
	if err := execPrepared(sess, fmt.Sprintf("CREATE TABLE %s (%s)", table, strings.Join(cols, ", "))); err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		return nil
	}
	rowPh := "(" + strings.TrimRight(strings.Repeat("?, ", len(res.Columns)), ", ") + ")"
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	b.WriteString(" VALUES ")
	flat := make([]sqldb.Value, 0, len(res.Rows)*len(res.Columns))
	for i, row := range res.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(rowPh)
		flat = append(flat, row...)
	}
	return execPrepared(sess, b.String(), flat...)
}

// RetrieveSetActivity bridges external and internal data processing by
// loading the table behind a set reference into a set variable in the
// process space, preserving the relational structure as an XML RowSet
// (the Set Retrieval Pattern).
type RetrieveSetActivity struct {
	ActivityName string
	DataSource   string
	SetRefName   string
	SetVariable  string
}

// NewRetrieveSet builds a retrieve set activity.
func NewRetrieveSet(name, dataSourceVar, setRef, setVariable string) *RetrieveSetActivity {
	return &RetrieveSetActivity{ActivityName: name, DataSource: dataSourceVar, SetRefName: setRef, SetVariable: setVariable}
}

// Name implements engine.Activity.
func (a *RetrieveSetActivity) Name() string { return a.ActivityName }

// Execute implements engine.Activity.
func (a *RetrieveSetActivity) Execute(ctx *engine.Ctx) error {
	st, err := getState(ctx)
	if err != nil {
		return err
	}
	db, err := st.resolveDB(ctx, a.DataSource)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	ref, err := SetReference(ctx, a.SetRefName)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	if ref.Table == "" {
		return fmt.Errorf("%s: set reference %s is unbound", a.ActivityName, a.SetRefName)
	}
	sess := st.sessionFor(db)
	// The bound table is instance-unique (see runOnce): a prepared
	// one-shot keeps this retrieval out of the shared plan cache.
	ps, err := sess.Prepare("SELECT * FROM " + ref.Table)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	res, err := ps.Exec()
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	if !res.IsQuery() {
		return fmt.Errorf("%s: statement did not return rows", a.ActivityName)
	}
	doc, err := rowset.FromResult(res)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	return ctx.SetNode(a.SetVariable, doc)
}

// AtomicSQLSequence embeds a sequence of SQL and retrieve set activities.
// In long-running processes the sequence is processed as a single
// transaction; in short-running processes all information service
// activities already share one transaction, so the boundary is a no-op.
type AtomicSQLSequence struct {
	ActivityName string
	Children     []engine.Activity

	// Retry, when set, re-runs the *entire* unit of work after a fault:
	// the failed attempt's transaction is rolled back first, so a retry
	// is legal — it restarts from a clean database state. This is the
	// transaction-boundary recovery that per-statement retries defer to.
	// Retries only engage in long-running processes; in a short-running
	// process the sequence is part of the single process-wide
	// transaction, and recovery belongs to the process boundary.
	Retry *resilience.Policy
}

// NewAtomicSequence builds an atomic SQL sequence.
func NewAtomicSequence(name string, children ...engine.Activity) *AtomicSQLSequence {
	return &AtomicSQLSequence{ActivityName: name, Children: children}
}

// WithRetry attaches a unit-of-work retry policy to the sequence.
func (a *AtomicSQLSequence) WithRetry(p *resilience.Policy) *AtomicSQLSequence {
	a.Retry = p
	return a
}

// Name implements engine.Activity.
func (a *AtomicSQLSequence) Name() string { return a.ActivityName }

// Execute implements engine.Activity.
func (a *AtomicSQLSequence) Execute(ctx *engine.Ctx) error {
	st, err := getState(ctx)
	if err != nil {
		return err
	}

	run := func() error {
		st.enterAtomic()
		var fault error
		for _, c := range a.Children {
			if fault = c.Execute(ctx); fault != nil {
				break
			}
		}
		// exitAtomic rolls the transaction back on fault, so every
		// failed attempt leaves the database as if it never ran.
		if err := st.exitAtomic(fault); err != nil && fault == nil {
			fault = err
		}
		return fault
	}

	var fault error
	if a.Retry == nil || st.transactional() {
		if a.Retry != nil {
			ctx.Inst.RecordTrace(a.ActivityName, "retry-suppressed",
				fmt.Sprintf("sequence participates in a wider transaction (%s mode)", st.modeLabel()))
		}
		fault = run()
	} else {
		obs := sqlObserver(ctx, a.ActivityName, a.Retry)
		fault = a.Retry.DoErr(obs, func(attempt int) error { return run() })
		// A simulated crash classifies as permanent (the process is
		// dead, not retrying); surface the raw crash error so the
		// engine treats it as process death rather than a fault.
		if ce, ok := journal.AsCrash(fault); ok {
			return ce
		}
		if ab := resilience.Abandoned(fault); ab != nil {
			return &engine.Fault{Name: engine.FaultRetryExhausted, Activity: a.ActivityName, Wrapped: ab}
		}
	}
	if ce, ok := journal.AsCrash(fault); ok {
		return ce
	}
	if fault != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, fault)
	}
	return nil
}

// JavaSnippet is the IBM-specific extension that embeds code directly into
// the process logic; within it one may access a set variable as an object
// and update, insert, and delete tuples.
func JavaSnippet(name string, fn func(ctx *engine.Ctx) error) engine.Activity {
	return engine.NewSnippet(name, fn)
}
