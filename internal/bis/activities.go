package bis

import (
	"fmt"
	"strings"

	"wfsql/internal/engine"
	"wfsql/internal/rowset"
	"wfsql/internal/sqldb"
)

// SQLActivity embeds a SQL statement that is sent to a database system and
// processed there. Queries, DML, DDL, and stored procedure calls are
// supported. A resulting data set is not passed to the process space: it
// remains in the data source, referenced by a result set reference.
type SQLActivity struct {
	ActivityName string
	DataSource   string // data source variable name
	SQL          string // statement with #var# / #setref# placeholders
	ResultRef    string // result set reference receiving a query/CALL result ("" for none)
}

// NewSQL builds a SQL activity against a data source variable.
func NewSQL(name, dataSourceVar, sql string) *SQLActivity {
	return &SQLActivity{ActivityName: name, DataSource: dataSourceVar, SQL: sql}
}

// Into directs the activity's result set into a result set reference.
func (a *SQLActivity) Into(resultRef string) *SQLActivity {
	a.ResultRef = resultRef
	return a
}

// Name implements engine.Activity.
func (a *SQLActivity) Name() string { return a.ActivityName }

// Execute implements engine.Activity.
func (a *SQLActivity) Execute(ctx *engine.Ctx) error {
	st, err := getState(ctx)
	if err != nil {
		return err
	}
	db, err := st.resolveDB(ctx, a.DataSource)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	sql, params, err := substituteSQL(ctx, st, a.SQL)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	sess := st.sessionFor(db)

	if a.ResultRef == "" {
		if _, err := sess.Exec(sql, params...); err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
		return nil
	}

	// Result handling: execute, then materialize the result *inside the
	// data source* as a per-instance table; only the reference enters the
	// process space.
	ref, err := SetReference(ctx, a.ResultRef)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	if ref.Kind != ResultSetRef {
		return fmt.Errorf("%s: %s is not a result set reference", a.ActivityName, a.ResultRef)
	}
	gen := fmt.Sprintf("%s_i%d", ref.Name, ctx.Inst.ID)
	trimmed := strings.TrimSpace(strings.ToUpper(sql))
	if strings.HasPrefix(trimmed, "SELECT") {
		ctas := fmt.Sprintf("CREATE TABLE %s AS %s", gen, sql)
		if _, err := sess.Exec(ctas, params...); err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
	} else if strings.HasPrefix(trimmed, "CALL") {
		res, err := sess.Exec(sql, params...)
		if err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
		if err := materializeAsTable(sess, gen, res); err != nil {
			return fmt.Errorf("%s: %w", a.ActivityName, err)
		}
	} else {
		return fmt.Errorf("%s: only queries and CALLs can fill a result set reference", a.ActivityName)
	}
	st.mu.Lock()
	ref.Table = gen
	if ref.Cleanup == "" {
		ref.Cleanup = "DROP TABLE IF EXISTS {TABLE}"
	}
	st.mu.Unlock()
	return nil
}

// materializeAsTable stores an in-engine result set as a new table in the
// same database (used for stored procedure results bound to result refs).
func materializeAsTable(sess *sqldb.Session, table string, res *sqldb.Result) error {
	if !res.IsQuery() {
		return fmt.Errorf("bis: statement produced no result set")
	}
	var cols []string
	for i, c := range res.Columns {
		typ := "VARCHAR"
		for _, row := range res.Rows {
			switch row[i].K {
			case sqldb.KindInt:
				typ = "INTEGER"
			case sqldb.KindFloat:
				typ = "FLOAT"
			case sqldb.KindBool:
				typ = "BOOLEAN"
			case sqldb.KindString:
				typ = "VARCHAR"
			default:
				continue
			}
			break
		}
		cols = append(cols, fmt.Sprintf("%s %s", c, typ))
	}
	if _, err := sess.Exec(fmt.Sprintf("CREATE TABLE %s (%s)", table, strings.Join(cols, ", "))); err != nil {
		return err
	}
	ph := strings.TrimRight(strings.Repeat("?, ", len(res.Columns)), ", ")
	ins := fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, ph)
	for _, row := range res.Rows {
		if _, err := sess.Exec(ins, row...); err != nil {
			return err
		}
	}
	return nil
}

// RetrieveSetActivity bridges external and internal data processing by
// loading the table behind a set reference into a set variable in the
// process space, preserving the relational structure as an XML RowSet
// (the Set Retrieval Pattern).
type RetrieveSetActivity struct {
	ActivityName string
	DataSource   string
	SetRefName   string
	SetVariable  string
}

// NewRetrieveSet builds a retrieve set activity.
func NewRetrieveSet(name, dataSourceVar, setRef, setVariable string) *RetrieveSetActivity {
	return &RetrieveSetActivity{ActivityName: name, DataSource: dataSourceVar, SetRefName: setRef, SetVariable: setVariable}
}

// Name implements engine.Activity.
func (a *RetrieveSetActivity) Name() string { return a.ActivityName }

// Execute implements engine.Activity.
func (a *RetrieveSetActivity) Execute(ctx *engine.Ctx) error {
	st, err := getState(ctx)
	if err != nil {
		return err
	}
	db, err := st.resolveDB(ctx, a.DataSource)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	ref, err := SetReference(ctx, a.SetRefName)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	if ref.Table == "" {
		return fmt.Errorf("%s: set reference %s is unbound", a.ActivityName, a.SetRefName)
	}
	sess := st.sessionFor(db)
	res, err := sess.Query(fmt.Sprintf("SELECT * FROM %s", ref.Table))
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	doc, err := rowset.FromResult(res)
	if err != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, err)
	}
	return ctx.SetNode(a.SetVariable, doc)
}

// AtomicSQLSequence embeds a sequence of SQL and retrieve set activities.
// In long-running processes the sequence is processed as a single
// transaction; in short-running processes all information service
// activities already share one transaction, so the boundary is a no-op.
type AtomicSQLSequence struct {
	ActivityName string
	Children     []engine.Activity
}

// NewAtomicSequence builds an atomic SQL sequence.
func NewAtomicSequence(name string, children ...engine.Activity) *AtomicSQLSequence {
	return &AtomicSQLSequence{ActivityName: name, Children: children}
}

// Name implements engine.Activity.
func (a *AtomicSQLSequence) Name() string { return a.ActivityName }

// Execute implements engine.Activity.
func (a *AtomicSQLSequence) Execute(ctx *engine.Ctx) error {
	st, err := getState(ctx)
	if err != nil {
		return err
	}
	st.enterAtomic()
	var fault error
	for _, c := range a.Children {
		if fault = c.Execute(ctx); fault != nil {
			break
		}
	}
	if err := st.exitAtomic(fault); err != nil && fault == nil {
		fault = err
	}
	if fault != nil {
		return fmt.Errorf("%s: %w", a.ActivityName, fault)
	}
	return nil
}

// JavaSnippet is the IBM-specific extension that embeds code directly into
// the process logic; within it one may access a set variable as an object
// and update, insert, and delete tuples.
func JavaSnippet(name string, fn func(ctx *engine.Ctx) error) engine.Activity {
	return engine.NewSnippet(name, fn)
}
