package bis_test

import (
	"fmt"

	"wfsql/internal/bis"
	"wfsql/internal/engine"
	"wfsql/internal/sqldb"
)

// Example shows the BIS signature move: a SQL activity whose result stays
// in the database behind a result set reference, retrieved into the
// process space only when needed.
func Example() {
	db := sqldb.Open("orders")
	db.MustExec("CREATE TABLE Orders (ItemID VARCHAR, Quantity INTEGER)")
	db.MustExec("INSERT INTO Orders VALUES ('bolt', 10), ('bolt', 5), ('nut', 3)")

	e := engine.New(nil)
	e.RegisterDataSource("orders", db)

	p := bis.NewProcess("totals").
		DataSourceVariable("DS", "orders").
		InputSetReference("SR_Orders", "Orders").
		ResultSetReference("SR_Totals").
		XMLVariable("SV_Totals", "").
		Body(engine.NewSequence("main",
			bis.NewSQL("aggregate", "DS",
				"SELECT ItemID, SUM(Quantity) AS Total FROM #SR_Orders# GROUP BY ItemID ORDER BY ItemID").
				Into("SR_Totals"),
			bis.NewRetrieveSet("materialize", "DS", "SR_Totals", "SV_Totals"),
			bis.JavaSnippet("print", func(ctx *engine.Ctx) error {
				n, err := bis.TupleCount(ctx, "SV_Totals")
				fmt.Println("item types:", n)
				return err
			}),
		)).
		Build()

	d, _ := e.Deploy(p)
	d.Run(nil)
	// Output: item types: 2
}
