// Package chaos provides deterministic, seedable fault injectors for the
// reproduction's two external dependencies: Web services on the wsbus
// (error / latency / panic injection via a handler decorator) and the
// sqldb engine (an exec-hook fault plan that can fail the Nth statement or
// commit, plus a fault-injecting session wrapper).
//
// Every injector is driven by an explicit plan with a seed, so a chaos
// test that failed can be replayed exactly. Injected failures happen
// *before* the wrapped handler or statement runs — an injected fault never
// leaves a partial side effect behind, which is what lets the chaos test
// matrix assert exactly-once visible effects under retries.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wfsql/internal/wsbus"
)

// FaultPlan drives fault injection for one decorated service. The first
// PanicFirst matching calls panic, the next SlowFirst calls sleep Delay
// and then fail, the next FailFirst calls fail fast; after those
// deterministic windows each call fails with probability FailRate (seeded,
// reproducible). Calls not selected for injection pass through to the real
// handler untouched.
type FaultPlan struct {
	// PanicFirst panics on the first N matching calls (exercises the
	// bus's panic recovery).
	PanicFirst int
	// SlowFirst injects Delay of latency on the next N matching calls and
	// then fails them (a hung dependency: the inner handler is NOT
	// invoked, so a caller that times out early loses nothing).
	SlowFirst int
	Delay     time.Duration
	// FailFirst fails the next N matching calls fast.
	FailFirst int
	// FailRate is the probability a later call fails (0 disables).
	FailRate float64
	// Permanent marks injected errors non-retryable (wsbus.Permanent
	// instead of wsbus.Transient).
	Permanent bool
	// Match restricts injection to requests it accepts (nil: all).
	// Non-matching calls neither fail nor advance the call counter.
	Match func(req map[string]string) bool
	// ErrText overrides the injected error text.
	ErrText string

	// mu guards every mutable field below. rand.Rand is NOT safe for
	// concurrent use, and a decorated service is routinely invoked from
	// parallel workflow branches, so rng must only ever be touched with
	// mu held (decide owns the only access). TestFaultPlanConcurrentUse
	// pins this invariant under the race detector.
	mu       sync.Mutex
	rng      *rand.Rand
	seed     int64
	calls    int // matching calls seen
	injected int // calls that were failed/panicked/delayed
}

// NewFaultPlan creates a plan whose random tail (FailRate) is driven by
// the seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Calls returns how many matching calls the plan has seen.
func (p *FaultPlan) Calls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// Injected returns how many calls were injected with a fault (including
// panics and slow-fails).
func (p *FaultPlan) Injected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// verdict is the decision for one call.
type verdict int

const (
	pass verdict = iota
	failFast
	slowFail
	panicNow
)

// decide consumes one matching call and returns the injection verdict.
func (p *FaultPlan) decide() verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	n := p.calls
	switch {
	case n <= p.PanicFirst:
		p.injected++
		return panicNow
	case n <= p.PanicFirst+p.SlowFirst:
		p.injected++
		return slowFail
	case n <= p.PanicFirst+p.SlowFirst+p.FailFirst:
		p.injected++
		return failFast
	}
	if p.FailRate > 0 {
		if p.rng == nil {
			p.rng = rand.New(rand.NewSource(p.seed))
		}
		if p.rng.Float64() < p.FailRate {
			p.injected++
			return failFast
		}
	}
	return pass
}

// err builds the injected error with the plan's classification.
func (p *FaultPlan) err(mode string) error {
	text := p.ErrText
	if text == "" {
		text = "injected fault"
	}
	e := fmt.Errorf("chaos: %s (%s)", text, mode)
	if p.Permanent {
		return wsbus.Permanent(e)
	}
	return wsbus.Transient(e)
}

// WrapHandler decorates a wsbus handler with the plan.
func (p *FaultPlan) WrapHandler(h wsbus.Handler) wsbus.Handler {
	return func(req wsbus.Message) (wsbus.Message, error) {
		if p.Match != nil && !p.Match(req) {
			return h(req)
		}
		switch p.decide() {
		case panicNow:
			panic(fmt.Sprintf("chaos: injected panic (%s)", p.ErrText))
		case slowFail:
			time.Sleep(p.Delay)
			return nil, p.err("slow")
		case failFast:
			return nil, p.err("fast")
		}
		return h(req)
	}
}

// WrapService decorates a plain map-based service function (the mswf
// runtime's service shape) with the plan.
func (p *FaultPlan) WrapService(fn func(map[string]string) (map[string]string, error)) func(map[string]string) (map[string]string, error) {
	wrapped := p.WrapHandler(func(req wsbus.Message) (wsbus.Message, error) { return fn(req) })
	return func(req map[string]string) (map[string]string, error) { return wrapped(req) }
}

// Inject decorates a registered bus service in place.
func Inject(bus *wsbus.Bus, service string, p *FaultPlan) error {
	return bus.Decorate(service, p.WrapHandler)
}
