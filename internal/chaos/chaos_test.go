package chaos

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfsql/internal/journal"
	"wfsql/internal/resilience"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

func echoHandler(req wsbus.Message) (wsbus.Message, error) {
	return wsbus.Message{"echo": req["x"]}, nil
}

// TestFaultPlanWindows: panic window, slow window, fail window, then
// pass-through — in that deterministic order.
func TestFaultPlanWindows(t *testing.T) {
	bus := wsbus.New()
	bus.Register("svc", echoHandler)
	p := NewFaultPlan(1)
	p.PanicFirst, p.SlowFirst, p.FailFirst = 1, 1, 1
	p.Delay = time.Millisecond
	if err := Inject(bus, "svc", p); err != nil {
		t.Fatal(err)
	}

	// Call 1: panic, recovered by the bus into a transient error.
	_, err := bus.Invoke("svc", wsbus.Message{"x": "a"})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("call 1: %v, want recovered panic", err)
	}
	if !wsbus.IsTransient(err) {
		t.Fatalf("recovered panic must be transient: %v", err)
	}
	// Call 2: slow fail.
	start := time.Now()
	_, err = bus.Invoke("svc", wsbus.Message{"x": "b"})
	if err == nil || time.Since(start) < p.Delay {
		t.Fatalf("call 2: %v after %v, want delayed fault", err, time.Since(start))
	}
	// Call 3: fast fail, transient.
	if _, err = bus.Invoke("svc", wsbus.Message{"x": "c"}); !wsbus.IsTransient(err) {
		t.Fatalf("call 3: %v, want transient fault", err)
	}
	// Call 4: pass-through.
	resp, err := bus.Invoke("svc", wsbus.Message{"x": "d"})
	if err != nil || resp["echo"] != "d" {
		t.Fatalf("call 4: %v %v", err, resp)
	}
	if p.Calls() != 4 || p.Injected() != 3 {
		t.Fatalf("plan counters calls=%d injected=%d", p.Calls(), p.Injected())
	}
	// Bus counters: 4 attempts (panicking/slow calls still count), 1 success.
	if bus.Attempts() != 4 || bus.Successes() != 1 || bus.Panics() != 1 {
		t.Fatalf("bus attempts=%d successes=%d panics=%d", bus.Attempts(), bus.Successes(), bus.Panics())
	}
}

// TestFaultPlanMatch: non-matching requests bypass injection entirely.
func TestFaultPlanMatch(t *testing.T) {
	bus := wsbus.New()
	bus.Register("svc", echoHandler)
	p := NewFaultPlan(1)
	p.FailFirst = 1000
	p.Permanent = true
	p.Match = func(req map[string]string) bool { return req["x"] == "bad" }
	if err := Inject(bus, "svc", p); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Invoke("svc", wsbus.Message{"x": "good"}); err != nil {
		t.Fatalf("non-matching call failed: %v", err)
	}
	_, err := bus.Invoke("svc", wsbus.Message{"x": "bad"})
	if err == nil {
		t.Fatal("matching call should fail")
	}
	if tr, ok := wsbus.Classified(err); !ok || tr {
		t.Fatalf("want permanent classification, got %v", err)
	}
	if p.Calls() != 1 {
		t.Fatalf("plan counted %d calls, want 1 (only matching)", p.Calls())
	}
}

// TestFaultRateDeterminism: same seed, same verdict sequence.
func TestFaultRateDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		p := NewFaultPlan(seed)
		p.FailRate = 0.5
		h := p.WrapHandler(echoHandler)
		outcome := make([]bool, 20)
		for i := range outcome {
			_, err := h(wsbus.Message{"x": "v"})
			outcome[i] = err == nil
		}
		return outcome
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded fault sequence not reproducible at call %d", i)
		}
	}
	flipped := false
	c := run(43)
	for i := range a {
		if a[i] != c[i] {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("different seeds should produce different fault sequences")
	}
}

// TestSQLFaultPlanNthStatement: the DB-wide hook fails exactly the Nth
// matching statement, once, and the retry then succeeds.
func TestSQLFaultPlanNthStatement(t *testing.T) {
	db := sqldb.Open("chaosdb")
	db.MustExec("CREATE TABLE T (A INTEGER)")
	p := &SQLFaultPlan{Kinds: []string{"INSERT"}, FailNth: []int{2}}
	InstallSQL(db, p)
	defer InstallSQL(db, nil)

	if _, err := db.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatalf("insert 1: %v", err)
	}
	if _, err := db.Exec("INSERT INTO T VALUES (2)"); err == nil {
		t.Fatal("insert 2 should be injected with a fault")
	} else if !wsbus.IsTransient(err) {
		t.Fatalf("injected SQL fault should be transient: %v", err)
	}
	// Retry (statement #3) passes.
	if _, err := db.Exec("INSERT INTO T VALUES (2)"); err != nil {
		t.Fatalf("retried insert: %v", err)
	}
	res := db.MustExec("SELECT COUNT(*) FROM T")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("rows = %d, want 2 (no phantom effect from the failed statement)", n)
	}
	if p.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", p.Injected())
	}
}

// TestSQLFaultPlanFailsCommit: a commit fault aborts the transaction; the
// session can roll back and retry the whole unit of work.
func TestSQLFaultPlanFailsCommit(t *testing.T) {
	db := sqldb.Open("chaosdb")
	db.MustExec("CREATE TABLE T (A INTEGER)")
	p := &SQLFaultPlan{FailCommits: 1}
	InstallSQL(db, p)
	defer InstallSQL(db, nil)

	s := db.Session()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Fatal("first commit should fail")
	}
	s.Rollback() // the atomic-sequence fault path
	if n, _ := db.MustExec("SELECT COUNT(*) FROM T").Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("rolled-back txn leaked %d rows", n)
	}
	// Retry the unit of work; the second commit passes.
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatalf("second commit: %v", err)
	}
	if n, _ := db.MustExec("SELECT COUNT(*) FROM T").Rows[0][0].AsInt(); n != 1 {
		t.Fatal("retried unit of work should be visible exactly once")
	}
}

// TestFaultySessionWrapper: the session wrapper applies the plan without a
// DB-wide hook.
func TestFaultySessionWrapper(t *testing.T) {
	db := sqldb.Open("chaosdb")
	db.MustExec("CREATE TABLE T (A INTEGER)")
	fs := WrapSession(db.Session(), &SQLFaultPlan{Kinds: []string{"INSERT"}, FailFirst: 1})
	if _, err := fs.Exec("INSERT INTO T VALUES (1)"); err == nil {
		t.Fatal("first insert through wrapper should fail")
	}
	if _, err := fs.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatalf("second insert: %v", err)
	}
	// Other sessions are unaffected.
	if _, err := db.Exec("INSERT INTO T VALUES (2)"); err != nil {
		t.Fatalf("direct session: %v", err)
	}
	res, err := fs.Query("SELECT COUNT(*) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}
}

// TestPlanWithRetryPolicy: an injected transient window is healed by a
// retry policy — the end-to-end contract the product layers rely on.
func TestPlanWithRetryPolicy(t *testing.T) {
	bus := wsbus.New()
	bus.Register("svc", echoHandler)
	p := NewFaultPlan(1)
	p.PanicFirst, p.FailFirst = 1, 2
	if err := Inject(bus, "svc", p); err != nil {
		t.Fatal(err)
	}
	pol := resilience.NewPolicy(5, time.Microsecond)
	resp, err := resilience.Do(pol, resilience.Observer{}, func(n int) (wsbus.Message, error) {
		return bus.Invoke("svc", wsbus.Message{"x": "v"})
	})
	if err != nil || resp["echo"] != "v" {
		t.Fatalf("retry over chaos window failed: %v %v", err, resp)
	}
	if bus.Attempts() != 4 || bus.Successes() != 1 {
		t.Fatalf("attempts=%d successes=%d, want 4/1", bus.Attempts(), bus.Successes())
	}
}

// TestFaultPlanConcurrentUse pins the FaultPlan locking invariant: the
// plan's rand.Rand (and its counters) are only ever touched under the
// plan mutex, so a decorated service hammered from parallel workflow
// branches stays race-free. Run under -race, any unguarded rng access
// fails the build.
func TestFaultPlanConcurrentUse(t *testing.T) {
	p := NewFaultPlan(42)
	p.FailFirst = 5
	p.FailRate = 0.25 // force the rng path on every later call
	h := p.WrapHandler(echoHandler)

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, _ = h(wsbus.Message{"x": "y"})
				_ = p.Calls()
				_ = p.Injected()
			}
		}()
	}
	wg.Wait()
	if got := p.Calls(); got != workers*perWorker {
		t.Fatalf("calls = %d, want %d (lost updates under concurrency)", got, workers*perWorker)
	}
	if p.Injected() < p.FailFirst {
		t.Fatalf("injected = %d, want >= %d", p.Injected(), p.FailFirst)
	}
}

// TestCrashPlanOneShot: a crash plan fires on exactly one matching
// check — the AtEffect-th — even when checks race from parallel
// branches.
func TestCrashPlanOneShot(t *testing.T) {
	p := &CrashPlan{Point: journal.CrashAfterEffect, Activity: "invoke", AtEffect: 3}
	inj := p.Injector()

	if inj(1, "invoke", journal.CrashBeforeJournal) {
		t.Fatal("fired on the wrong crash point")
	}
	if inj(1, "SQL2", journal.CrashAfterEffect) {
		t.Fatal("fired on the wrong activity")
	}
	var fired int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if inj(1, "invoke", journal.CrashAfterEffect) {
					atomic.AddInt32(&fired, 1)
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("crash plan fired %d times, want exactly 1", fired)
	}
	if !p.Fired() {
		t.Fatal("Fired() = false after firing")
	}
	if p.Seen() != 3 {
		t.Fatalf("Seen() = %d, want 3 (counting stops once fired)", p.Seen())
	}
}
