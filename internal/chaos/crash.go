package chaos

import (
	"sync"

	"wfsql/internal/journal"
)

// CrashPlan kills the workflow host at one of the journal protocol's
// three crash points. Unlike the fault plans in this package — whose
// injected errors model a *dependency* failing and therefore engage
// retry and fault-handling semantics — a crash plan models the host
// process itself dying: the resulting journal.CrashError is permanent,
// bypasses fault handlers, and leaves the instance to be recovered from
// its journal by a fresh host.
//
// The plan fires exactly once: on the AtEffect-th (1-based) crash-point
// check that matches Point and (optionally) Activity. Counting is per
// crash point, so AtEffect numbers effect executions, not protocol
// steps.
type CrashPlan struct {
	// Point selects which protocol step to die at.
	Point journal.CrashPoint
	// Activity restricts the plan to one activity name ("" = any).
	Activity string
	// AtEffect is the 1-based index of the matching check to crash on
	// (0 behaves like 1: crash on the first match).
	AtEffect int

	mu    sync.Mutex
	seen  int
	fired bool
}

// Injector returns the plan as a one-shot journal.CrashInjector.
func (p *CrashPlan) Injector() journal.CrashInjector {
	return func(instance int64, activity string, point journal.CrashPoint) bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.fired || point != p.Point {
			return false
		}
		if p.Activity != "" && activity != p.Activity {
			return false
		}
		p.seen++
		at := p.AtEffect
		if at <= 0 {
			at = 1
		}
		if p.seen < at {
			return false
		}
		p.fired = true
		return true
	}
}

// Fired reports whether the plan's crash has been injected.
func (p *CrashPlan) Fired() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Seen returns how many matching crash-point checks the plan observed
// (including the one it fired on).
func (p *CrashPlan) Seen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seen
}

// Crash installs the plan on a journal recorder. Pass a nil plan to
// remove injection.
func Crash(rec *journal.Recorder, p *CrashPlan) {
	if p == nil {
		rec.SetCrashInjector(nil)
		return
	}
	rec.SetCrashInjector(p.Injector())
}
