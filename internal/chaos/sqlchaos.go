package chaos

import (
	"fmt"
	"sync"
	"time"

	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

// SQLFaultPlan injects faults into a sqldb statement stream: it can fail
// the Nth matching statement, fail the first K commits (the classic
// "connection died at commit" fault the paper's transaction discussion
// revolves around), and add per-statement latency. Statements are counted
// in execution order; Kinds restricts which statement kinds participate.
type SQLFaultPlan struct {
	// Kinds restricts counting/injection to these StmtKind labels
	// (e.g. "INSERT", "COMMIT"). Empty means every statement.
	Kinds []string
	// FailNth fails the Nth (1-based) matching statement. Each entry
	// fires once; the statement is failed before it executes.
	FailNth []int
	// FailFirst fails the first N matching statements.
	FailFirst int
	// FailCommits fails the first N COMMIT statements (counted
	// separately from the Kinds filter).
	FailCommits int
	// Latency is slept before every matching statement.
	Latency time.Duration
	// Permanent marks injected errors non-retryable.
	Permanent bool
	// ErrText overrides the injected error text.
	ErrText string

	mu       sync.Mutex
	seen     int // matching statements seen
	commits  int // COMMIT statements seen
	injected int
}

// Seen returns how many matching statements the plan observed.
func (p *SQLFaultPlan) Seen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seen
}

// Injected returns how many statements were failed.
func (p *SQLFaultPlan) Injected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

func (p *SQLFaultPlan) matches(kind string) bool {
	if len(p.Kinds) == 0 {
		return true
	}
	for _, k := range p.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

func (p *SQLFaultPlan) sqlErr(kind string) error {
	text := p.ErrText
	if text == "" {
		text = "injected SQL fault"
	}
	e := fmt.Errorf("chaos: %s on %s", text, kind)
	if p.Permanent {
		return wsbus.Permanent(e)
	}
	return wsbus.Transient(e)
}

// Hook returns the plan as a sqldb.ExecHook for DB-wide installation.
func (p *SQLFaultPlan) Hook() sqldb.ExecHook {
	return func(kind string) error { return p.check(kind) }
}

// check consumes one statement observation and decides whether to fail it.
func (p *SQLFaultPlan) check(kind string) error {
	if kind == "COMMIT" {
		p.mu.Lock()
		p.commits++
		failCommit := p.commits <= p.FailCommits
		if failCommit {
			p.injected++
		}
		p.mu.Unlock()
		if failCommit {
			return p.sqlErr(kind)
		}
	}
	if !p.matches(kind) {
		return nil
	}
	p.mu.Lock()
	p.seen++
	n := p.seen
	fail := n <= p.FailFirst
	if !fail {
		for _, target := range p.FailNth {
			if n == target {
				fail = true
				break
			}
		}
	}
	if fail {
		p.injected++
	}
	lat := p.Latency
	p.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if fail {
		return p.sqlErr(kind)
	}
	return nil
}

// InstallSQL installs the plan as the database's exec hook (pass a nil
// plan to remove injection).
func InstallSQL(db *sqldb.DB, p *SQLFaultPlan) {
	if p == nil {
		db.SetExecHook(nil)
		return
	}
	db.SetExecHook(p.Hook())
}

// FaultySession wraps a single sqldb session with a plan, for call sites
// that hold a session directly instead of going through the DB-wide hook.
// Statements are checked against the plan before they reach the engine.
type FaultySession struct {
	S    *sqldb.Session
	Plan *SQLFaultPlan
}

// WrapSession builds a fault-injecting session wrapper.
func WrapSession(s *sqldb.Session, p *SQLFaultPlan) *FaultySession {
	return &FaultySession{S: s, Plan: p}
}

// Exec parses and executes one statement through the fault plan. The
// execution goes back through the session's text path (not the
// pre-parsed one) so a change sink on the database still captures the
// statement for replication.
func (f *FaultySession) Exec(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	if err := f.Plan.check(sqldb.StmtKind(st)); err != nil {
		return nil, err
	}
	return f.S.Exec(sql, params...)
}

// Query executes a statement through the fault plan and requires rows.
func (f *FaultySession) Query(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	r, err := f.Exec(sql, params...)
	if err != nil {
		return nil, err
	}
	if !r.IsQuery() {
		return nil, fmt.Errorf("chaos: statement did not return rows")
	}
	return r, nil
}
