package resilience

import (
	"errors"
	"testing"
	"time"

	"wfsql/internal/obsv"
)

// collectBackoffs runs a failing op under p and returns the backoff
// durations the loop chose (sleeps are stubbed out).
func collectBackoffs(t *testing.T, p *Policy) []time.Duration {
	t.Helper()
	var ds []time.Duration
	p.Sleep = func(time.Duration) {}
	obs := Observer{OnBackoff: func(_ int, d time.Duration) { ds = append(ds, d) }}
	err := p.DoErr(obs, func(int) error { return errors.New("boom") })
	if Abandoned(err) == nil {
		t.Fatalf("expected exhaustion, got %v", err)
	}
	return ds
}

// TestUnseededPoliciesDoNotBackoffInLockstep is the regression test for
// the thundering-herd bug: with Seed == 0 every Do call used to build
// its RNG from the same constant seed, so all unseeded instances drew
// an identical jitter sequence and retried at exactly the same moments.
// Two unseeded policies must now produce different backoff sequences.
func TestUnseededPoliciesDoNotBackoffInLockstep(t *testing.T) {
	mk := func() *Policy {
		return &Policy{
			MaxAttempts:    8,
			InitialBackoff: 100 * time.Millisecond,
			Jitter:         1.0, // fully randomized: any lockstep is visible
		}
	}
	a := collectBackoffs(t, mk())
	b := collectBackoffs(t, mk())
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("want 7 backoffs each, got %d and %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("two unseeded policies produced identical backoff sequences (lockstep): %v", a)
	}
}

// TestSeededPolicyRemainsDeterministic pins that the explicit-seed path
// is still reproducible: same seed, same sequence; different seeds,
// different sequences.
func TestSeededPolicyRemainsDeterministic(t *testing.T) {
	mk := func(seed int64) *Policy {
		return &Policy{
			MaxAttempts:    6,
			InitialBackoff: 100 * time.Millisecond,
			Jitter:         0.5,
			Seed:           seed,
		}
	}
	a := collectBackoffs(t, mk(42))
	b := collectBackoffs(t, mk(42))
	c := collectBackoffs(t, mk(43))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("different seeds produced identical sequences: %v", a)
	}
}

// TestSharedJitterConcurrentUse exercises the shared locked source from
// many goroutines; meaningful under -race.
func TestSharedJitterConcurrentUse(t *testing.T) {
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			p := &Policy{
				MaxAttempts:    5,
				InitialBackoff: time.Millisecond,
				Jitter:         1.0,
				Sleep:          func(time.Duration) {},
			}
			_ = p.DoErr(Observer{}, func(int) error { return errors.New("x") })
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// TestDeadLetterLogUsesInjectedClock is the regression test for the
// nondeterministic-replay bug: Add used to stamp dl.Time with a raw
// time.Now() even when the caller had an injectable clock, so a journal
// replay of a dead-lettered run could never reproduce the original
// records byte-for-byte.
func TestDeadLetterLogUsesInjectedClock(t *testing.T) {
	fixed := time.Date(2026, 8, 6, 9, 30, 0, 0, time.UTC)
	l := NewDeadLetterLog()
	l.SetClock(func() time.Time { return fixed })

	got := l.Add(DeadLetter{Activity: "Invoke", Key: "item-9", Reason: ReasonExhausted})
	if !got.Time.Equal(fixed) {
		t.Fatalf("Add stamped %v, want injected %v", got.Time, fixed)
	}

	// Two logs with the same clock produce identical records — the
	// property journal-replay comparison relies on.
	l2 := NewDeadLetterLog()
	l2.SetClock(func() time.Time { return fixed })
	got2 := l2.Add(DeadLetter{Activity: "Invoke", Key: "item-9", Reason: ReasonExhausted})
	if got != got2 {
		t.Fatalf("same clock, different records: %+v vs %+v", got, got2)
	}

	// An explicit caller-provided Time still wins.
	explicit := fixed.Add(time.Hour)
	got3 := l.Add(DeadLetter{Activity: "Invoke", Key: "item-10", Time: explicit})
	if !got3.Time.Equal(explicit) {
		t.Fatalf("explicit time overridden: %v", got3.Time)
	}

	// Nil clock restores wall time.
	l.SetClock(nil)
	before := time.Now()
	got4 := l.Add(DeadLetter{Key: "item-11"})
	if got4.Time.Before(before) {
		t.Fatalf("nil clock should fall back to time.Now, got %v", got4.Time)
	}
}

func TestDeadLetterLogMetrics(t *testing.T) {
	o := obsv.New()
	l := NewDeadLetterLog()
	l.SetObservability(o)
	l.Add(DeadLetter{Key: "a"})
	l.Add(DeadLetter{Key: "a"})
	l.Add(DeadLetter{Key: "b"})
	l.Requeue("a")
	if got := o.M().Counter("deadletter.added").Value(); got != 3 {
		t.Fatalf("deadletter.added = %d", got)
	}
	if got := o.M().Counter("deadletter.requeued").Value(); got != 2 {
		t.Fatalf("deadletter.requeued = %d", got)
	}
}
