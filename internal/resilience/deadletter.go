package resilience

import (
	"sort"
	"sync"
	"time"

	"wfsql/internal/obsv"
)

// DeadLetter is the record kept for one invocation whose retries were
// exhausted (or classified permanent): the BPEL-style fault that no fault
// handler absorbed, preserved for offline repair instead of crashing the
// process.
type DeadLetter struct {
	Seq      int       // 1-based sequence within the log
	Time     time.Time // when the record was written
	Activity string    // the activity that gave up
	Target   string    // downstream service or data source
	Key      string    // business key (e.g. the failed ItemID)
	Attempts int       // attempts spent before giving up
	Reason   string    // give-up reason (exhausted / permanent / deadline)
	LastErr  string    // last attempt's error text
}

// DeadLetterLog is a thread-safe append-only log of dead letters. One log
// typically lives on the engine/runtime and is shared by all instances.
//
// The log itself is in-memory; durability is delegated through
// SetPersistence hooks so the journal layer can write every record to
// the write-ahead log (and remove requeued ones) without this package
// importing it.
type DeadLetterLog struct {
	mu      sync.Mutex
	entries []DeadLetter
	nextSeq int
	persist func(DeadLetter)
	remove  func(key string)
	now     func() time.Time
	obs     *obsv.Observability
}

// NewDeadLetterLog creates an empty log.
func NewDeadLetterLog() *DeadLetterLog { return &DeadLetterLog{} }

// SetClock installs an injectable time source for stamping records.
// Product layers thread the retry policy's Now hook through here so a
// journal replay of a dead-lettered run reproduces identical records
// (Add formerly called time.Now() directly, which made replay
// comparisons nondeterministic). Nil restores time.Now.
func (l *DeadLetterLog) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// SetObservability attaches a metrics registry: deadletter.added and
// deadletter.requeued are counted. Nil detaches.
func (l *DeadLetterLog) SetObservability(o *obsv.Observability) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.obs = o
}

func (l *DeadLetterLog) clockLocked() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

// SetPersistence installs durability hooks: persist is called (outside
// the log's lock) for every Add, remove for every key dropped by
// Requeue. Either may be nil.
func (l *DeadLetterLog) SetPersistence(persist func(DeadLetter), remove func(key string)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.persist = persist
	l.remove = remove
}

// Restore seeds the log with previously persisted records WITHOUT
// invoking the persist hook (they are already durable). Sequence
// allocation continues past the highest restored Seq.
func (l *DeadLetterLog) Restore(entries []DeadLetter) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, dl := range entries {
		l.entries = append(l.entries, dl)
		if dl.Seq > l.nextSeq {
			l.nextSeq = dl.Seq
		}
	}
}

// Add appends a record, assigning Seq and Time, and returns the completed
// record.
func (l *DeadLetterLog) Add(dl DeadLetter) DeadLetter {
	l.mu.Lock()
	l.nextSeq++
	dl.Seq = l.nextSeq
	if dl.Time.IsZero() {
		dl.Time = l.clockLocked()
	}
	l.entries = append(l.entries, dl)
	persist := l.persist
	obs := l.obs
	l.mu.Unlock()
	obs.M().Counter("deadletter.added").Inc()
	if persist != nil {
		persist(dl)
	}
	return dl
}

// Requeue removes every record with the given business key and returns
// them (in log order) so the caller can re-drive the abandoned work.
// The remove hook is notified so persisted copies are dropped too.
func (l *DeadLetterLog) Requeue(key string) []DeadLetter {
	l.mu.Lock()
	var requeued []DeadLetter
	kept := l.entries[:0]
	for _, e := range l.entries {
		if e.Key == key {
			requeued = append(requeued, e)
		} else {
			kept = append(kept, e)
		}
	}
	l.entries = kept
	remove := l.remove
	obs := l.obs
	l.mu.Unlock()
	obs.M().Counter("deadletter.requeued").Add(int64(len(requeued)))
	if remove != nil && len(requeued) > 0 {
		remove(key)
	}
	return requeued
}

// Entries returns a copy of the log.
func (l *DeadLetterLog) Entries() []DeadLetter {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]DeadLetter(nil), l.entries...)
}

// Len returns the number of records.
func (l *DeadLetterLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Keys returns the distinct business keys in the log, sorted.
func (l *DeadLetterLog) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := map[string]bool{}
	var keys []string
	for _, e := range l.entries {
		if !seen[e.Key] {
			seen[e.Key] = true
			keys = append(keys, e.Key)
		}
	}
	sort.Strings(keys)
	return keys
}

// Reset clears the log (between test runs).
func (l *DeadLetterLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = nil
	l.nextSeq = 0
}
