package resilience

import (
	"sort"
	"sync"
	"time"
)

// DeadLetter is the record kept for one invocation whose retries were
// exhausted (or classified permanent): the BPEL-style fault that no fault
// handler absorbed, preserved for offline repair instead of crashing the
// process.
type DeadLetter struct {
	Seq      int       // 1-based sequence within the log
	Time     time.Time // when the record was written
	Activity string    // the activity that gave up
	Target   string    // downstream service or data source
	Key      string    // business key (e.g. the failed ItemID)
	Attempts int       // attempts spent before giving up
	Reason   string    // give-up reason (exhausted / permanent / deadline)
	LastErr  string    // last attempt's error text
}

// DeadLetterLog is a thread-safe append-only log of dead letters. One log
// typically lives on the engine/runtime and is shared by all instances.
type DeadLetterLog struct {
	mu      sync.Mutex
	entries []DeadLetter
}

// NewDeadLetterLog creates an empty log.
func NewDeadLetterLog() *DeadLetterLog { return &DeadLetterLog{} }

// Add appends a record, assigning Seq and Time, and returns the completed
// record.
func (l *DeadLetterLog) Add(dl DeadLetter) DeadLetter {
	l.mu.Lock()
	defer l.mu.Unlock()
	dl.Seq = len(l.entries) + 1
	if dl.Time.IsZero() {
		dl.Time = time.Now()
	}
	l.entries = append(l.entries, dl)
	return dl
}

// Entries returns a copy of the log.
func (l *DeadLetterLog) Entries() []DeadLetter {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]DeadLetter(nil), l.entries...)
}

// Len returns the number of records.
func (l *DeadLetterLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Keys returns the distinct business keys in the log, sorted.
func (l *DeadLetterLog) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := map[string]bool{}
	var keys []string
	for _, e := range l.entries {
		if !seen[e.Key] {
			seen[e.Key] = true
			keys = append(keys, e.Key)
		}
	}
	sort.Strings(keys)
	return keys
}

// Reset clears the log (between test runs).
func (l *DeadLetterLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = nil
}
