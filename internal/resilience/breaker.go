package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's state.
type BreakerState int

// Breaker states. Closed passes calls through; Open fails them fast;
// HalfOpen admits probe calls whose outcomes decide between the two.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// ErrOpen is returned (wrapped) when a call is refused because the circuit
// is open. It is transient: a retry policy backing off past the cooldown
// will find the breaker half-open.
var ErrOpen = errors.New("resilience: circuit open")

// Transition records one breaker state change.
type Transition struct {
	From, To BreakerState
	At       time.Time
}

// Breaker is a closed/open/half-open circuit breaker. It is safe for
// concurrent use and is typically shared by every activity targeting the
// same downstream service or data source, across process instances.
type Breaker struct {
	// FailureThreshold is the number of consecutive failures (while
	// closed) that opens the circuit. Values <= 0 mean 5.
	FailureThreshold int
	// Cooldown is how long the circuit stays open before admitting
	// half-open probes. Values <= 0 mean 100ms.
	Cooldown time.Duration
	// SuccessThreshold is the number of consecutive half-open successes
	// that close the circuit again. Values <= 0 mean 1.
	SuccessThreshold int
	// HalfOpenProbes bounds the number of in-flight probe calls admitted
	// while half-open. Values <= 0 mean 1 (the classical single-probe
	// breaker). Without the bound, every goroutine blocked on an open
	// circuit storms the recovering service the instant the cooldown
	// elapses.
	HalfOpenProbes int

	// Clock is a test hook; nil means time.Now.
	Clock func() time.Time

	mu          sync.Mutex
	state       BreakerState
	failures    int // consecutive failures while closed
	successes   int // consecutive successes while half-open
	probes      int // in-flight half-open probes (admitted, not yet settled)
	openedAt    time.Time
	transitions []Transition
	onChange    func(from, to BreakerState)
}

// NewBreaker builds a breaker opening after threshold consecutive
// failures and probing again after the cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{FailureThreshold: threshold, Cooldown: cooldown}
}

// OnTransition installs a callback fired (outside the breaker lock is NOT
// guaranteed; keep it fast) on every state change.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onChange = fn
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold <= 0 {
		return 5
	}
	return b.FailureThreshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 100 * time.Millisecond
	}
	return b.Cooldown
}

func (b *Breaker) successThreshold() int {
	if b.SuccessThreshold <= 0 {
		return 1
	}
	return b.SuccessThreshold
}

func (b *Breaker) halfOpenProbes() int {
	if b.HalfOpenProbes <= 0 {
		return 1
	}
	return b.HalfOpenProbes
}

// transitionLocked changes state and records/announces the transition.
func (b *Breaker) transitionLocked(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.transitions = append(b.transitions, Transition{From: from, To: to, At: b.now()})
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// Allow reports whether a call may proceed. While open it fails fast until
// the cooldown elapses, then flips to half-open and admits a bounded
// number of in-flight probes (HalfOpenProbes, default 1); further callers
// are refused until a probe settles via OnSuccess/OnFailure. Every
// admitted call MUST settle, or the probe slots leak.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probes < b.halfOpenProbes() {
			b.probes++
			return true
		}
		return false
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown() {
			b.successes = 0
			b.probes = 1 // this caller is the first probe
			b.transitionLocked(HalfOpen)
			return true
		}
		return false
	}
	return true
}

// settleProbeLocked releases one half-open probe slot (floored at zero so
// late settles from calls admitted before the last open/half-open flip
// cannot underflow).
func (b *Breaker) settleProbeLocked() {
	if b.probes > 0 {
		b.probes--
	}
}

// OnSuccess records a successful call.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.settleProbeLocked()
		b.successes++
		if b.successes >= b.successThreshold() {
			b.failures = 0
			b.probes = 0
			b.transitionLocked(Closed)
		}
	}
}

// OnFailure records a failed call. While closed, the consecutive-failure
// counter may trip the circuit; while half-open, any failure reopens it.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.threshold() {
			b.openedAt = b.now()
			b.transitionLocked(Open)
		}
	case HalfOpen:
		b.settleProbeLocked()
		b.openedAt = b.now()
		b.probes = 0
		b.transitionLocked(Open)
	}
}

// State returns the current state (resolving an elapsed cooldown is left
// to Allow; State is a pure read).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions returns a copy of the recorded state changes (the breaker's
// audit trail).
func (b *Breaker) Transitions() []Transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Transition(nil), b.transitions...)
}

// RefusedError wraps ErrOpen with the refused service name.
func RefusedError(target string) error {
	return fmt.Errorf("%s: %w", target, ErrOpen)
}
