package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

type permErr struct{ msg string }

func (e *permErr) Error() string   { return e.msg }
func (e *permErr) Temporary() bool { return false }

type transErr struct{ msg string }

func (e *transErr) Error() string   { return e.msg }
func (e *transErr) Temporary() bool { return true }

// TestDoRetriesTransientUntilSuccess: fail-twice-then-succeed converges
// without real sleeping (Sleep hook records the backoff schedule).
func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	var slept []time.Duration
	p := NewPolicy(5, 10*time.Millisecond)
	p.Sleep = func(d time.Duration) { slept = append(slept, d) }
	calls := 0
	v, err := Do(p, Observer{}, func(n int) (string, error) {
		calls++
		if calls <= 2 {
			return "", &transErr{fmt.Sprintf("boom %d", calls)}
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do: %v %q", err, v)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", slept, want)
	}
}

// TestDoStopsOnPermanentError: a permanent classification ends the loop at
// the first failure.
func TestDoStopsOnPermanentError(t *testing.T) {
	p := NewPolicy(5, time.Millisecond)
	p.Sleep = func(time.Duration) {}
	calls := 0
	_, err := Do(p, Observer{}, func(n int) (int, error) {
		calls++
		return 0, &permErr{"no retry"}
	})
	ab := Abandoned(err)
	if ab == nil || ab.Reason != ReasonPermanent || ab.Attempts != 1 {
		t.Fatalf("err = %v, want permanent abandonment after 1 attempt", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	var pe *permErr
	if !errors.As(err, &pe) {
		t.Fatalf("abandonment should wrap the cause, got %v", err)
	}
}

// TestDoExhaustsAttempts: the loop gives up after MaxAttempts and reports
// the final cause.
func TestDoExhaustsAttempts(t *testing.T) {
	p := NewPolicy(3, time.Millisecond)
	p.Sleep = func(time.Duration) {}
	calls := 0
	var events []string
	obs := Observer{
		OnAttempt: func(n, max int) { events = append(events, fmt.Sprintf("attempt %d/%d", n, max)) },
		OnGiveUp:  func(n int, err error, reason string) { events = append(events, "giveup:"+reason) },
	}
	_, err := Do(p, obs, func(n int) (int, error) {
		calls++
		return 0, &transErr{"still down"}
	})
	ab := Abandoned(err)
	if ab == nil || ab.Reason != ReasonExhausted || ab.Attempts != 3 {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if events[len(events)-1] != "giveup:exhausted" {
		t.Fatalf("events = %v", events)
	}
}

// TestBackoffCapAndJitter: the schedule is capped at MaxBackoff and the
// jittered delay stays within the configured window, deterministically.
func TestBackoffCapAndJitter(t *testing.T) {
	p := &Policy{InitialBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond, Multiplier: 2}
	ds := []time.Duration{p.BackoffFor(1, nil), p.BackoffFor(2, nil), p.BackoffFor(3, nil), p.BackoffFor(4, nil)}
	want := []time.Duration{10, 20, 35, 35}
	for i, d := range ds {
		if d != want[i]*time.Millisecond {
			t.Fatalf("backoff %d = %v, want %vms", i+1, d, want[i])
		}
	}

	p.Jitter = 0.5
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	a, b := p.BackoffFor(2, rng1), p.BackoffFor(2, rng2)
	if a != b {
		t.Fatalf("jitter is not deterministic per seed: %v vs %v", a, b)
	}
	if a < 10*time.Millisecond || a > 20*time.Millisecond {
		t.Fatalf("jittered backoff %v outside [10ms,20ms]", a)
	}
}

// TestOverallDeadline: the loop refuses to sleep past the overall budget.
func TestOverallDeadline(t *testing.T) {
	now := time.Unix(0, 0)
	p := NewPolicy(10, 40*time.Millisecond)
	p.OverallDeadline = 100 * time.Millisecond
	p.Now = func() time.Time { return now }
	p.Sleep = func(d time.Duration) { now = now.Add(d) }
	calls := 0
	_, err := Do(p, Observer{}, func(n int) (int, error) {
		calls++
		now = now.Add(time.Millisecond) // each attempt costs 1ms
		return 0, &transErr{"down"}
	})
	ab := Abandoned(err)
	if ab == nil || ab.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want deadline abandonment", err)
	}
	// attempt1(1ms) + sleep40 + attempt2(1ms) + sleep80 would exceed 100ms.
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

// TestPerAttemptTimeout: a hung attempt is abandoned and counted as a
// transient failure; its late completion is discarded.
func TestPerAttemptTimeout(t *testing.T) {
	p := NewPolicy(3, 0)
	p.PerAttemptTimeout = 10 * time.Millisecond
	started := make(chan int, 3)
	v, err := Do(p, Observer{}, func(n int) (string, error) {
		started <- n
		if n == 1 {
			time.Sleep(200 * time.Millisecond) // hung first attempt
		}
		return fmt.Sprintf("resp%d", n), nil
	})
	if err != nil || v != "resp2" {
		t.Fatalf("Do: %v %q (want late resp1 discarded)", err, v)
	}
	if len(started) < 1 {
		t.Fatal("no attempts started")
	}
}

// TestBreakerLifecycle walks the closed -> open -> half-open -> closed
// cycle with a fake clock and checks the transition audit trail.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 50*time.Millisecond)
	b.Clock = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.OnFailure()
	}
	if b.State() != Closed {
		t.Fatalf("state = %v before threshold", b.State())
	}
	b.OnFailure() // third consecutive failure trips it
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must fail fast during cooldown")
	}

	now = now.Add(60 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("elapsed cooldown must admit a half-open probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	b.OnFailure() // failed probe reopens
	if b.State() != Open {
		t.Fatalf("state = %v, want reopened", b.State())
	}

	now = now.Add(60 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe window")
	}
	b.OnSuccess()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}

	var path []string
	for _, tr := range b.Transitions() {
		path = append(path, fmt.Sprintf("%s->%s", tr.From, tr.To))
	}
	want := []string{"closed->open", "open->half-open", "half-open->open", "open->half-open", "half-open->closed"}
	if len(path) != len(want) {
		t.Fatalf("transitions = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", path, want)
		}
	}
}

// TestBreakerSuccessResetsFailureStreak: intervening successes keep the
// consecutive-failure counter from tripping the circuit.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(2, time.Second)
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (streak was broken)", b.State())
	}
	b.OnFailure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
}

// TestDeadLetterLog: sequence numbers, keys, and copies.
func TestDeadLetterLog(t *testing.T) {
	l := NewDeadLetterLog()
	l.Add(DeadLetter{Activity: "invoke", Key: "item002", Attempts: 4, Reason: ReasonExhausted})
	l.Add(DeadLetter{Activity: "invoke", Key: "item001", Attempts: 1, Reason: ReasonPermanent})
	l.Add(DeadLetter{Activity: "invoke", Key: "item002", Attempts: 4, Reason: ReasonExhausted})
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	es := l.Entries()
	if es[0].Seq != 1 || es[2].Seq != 3 {
		t.Fatalf("sequence numbering broken: %+v", es)
	}
	keys := l.Keys()
	if len(keys) != 2 || keys[0] != "item001" || keys[1] != "item002" {
		t.Fatalf("keys = %v", keys)
	}
	es[0].Key = "mutated"
	if l.Entries()[0].Key == "mutated" {
		t.Fatal("Entries must return a copy")
	}
}

// TestDefaultClassify: unmarked errors retry; the Temporary marker
// discriminates.
func TestDefaultClassify(t *testing.T) {
	if !DefaultClassify(errors.New("plain")) {
		t.Fatal("unmarked errors default to retryable")
	}
	if DefaultClassify(fmt.Errorf("wrap: %w", &permErr{"p"})) {
		t.Fatal("wrapped permanent errors must not be retryable")
	}
	if !DefaultClassify(fmt.Errorf("wrap: %w", &transErr{"t"})) {
		t.Fatal("wrapped transient errors must be retryable")
	}
	if !DefaultClassify(RefusedError("svc")) {
		t.Fatal("breaker refusal is retryable (cooldown may elapse)")
	}
}
