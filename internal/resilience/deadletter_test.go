package resilience

import (
	"testing"
)

// TestDeadLetterPersistenceHooks: every Add flows through the persist
// hook with its assigned Seq/Time, Requeue notifies the remove hook
// exactly once per key, and hooks fire outside the log's lock (the
// hooks below call back into the log to prove no self-deadlock).
func TestDeadLetterPersistenceHooks(t *testing.T) {
	l := NewDeadLetterLog()
	var persisted []DeadLetter
	var removed []string
	l.SetPersistence(
		func(dl DeadLetter) {
			_ = l.Len() // re-entrant read: persist must run unlocked
			persisted = append(persisted, dl)
		},
		func(key string) {
			_ = l.Keys()
			removed = append(removed, key)
		},
	)

	l.Add(DeadLetter{Activity: "invoke", Key: "item001", Reason: "exhausted"})
	l.Add(DeadLetter{Activity: "invoke", Key: "item002", Reason: "permanent"})
	l.Add(DeadLetter{Activity: "SQL2", Key: "item001", Reason: "exhausted"})

	if len(persisted) != 3 {
		t.Fatalf("persist hook saw %d records, want 3", len(persisted))
	}
	for i, dl := range persisted {
		if dl.Seq != i+1 {
			t.Fatalf("persisted record %d has Seq %d, want %d", i, dl.Seq, i+1)
		}
		if dl.Time.IsZero() {
			t.Fatalf("persisted record %d has zero Time", i)
		}
	}

	re := l.Requeue("item001")
	if len(re) != 2 {
		t.Fatalf("requeued %d records for item001, want 2", len(re))
	}
	if len(removed) != 1 || removed[0] != "item001" {
		t.Fatalf("remove hook calls = %v, want [item001]", removed)
	}
	if l.Requeue("item001") != nil {
		t.Fatal("second requeue of the same key returned records")
	}
	if len(removed) != 1 {
		t.Fatalf("remove hook fired for an empty requeue: %v", removed)
	}
	if got := l.Keys(); len(got) != 1 || got[0] != "item002" {
		t.Fatalf("surviving keys = %v, want [item002]", got)
	}
}

// TestDeadLetterRestoreRoundTrip: a log rebuilt from persisted entries
// continues sequence allocation past the highest restored Seq, does NOT
// re-persist the restored records, and behaves identically to the
// original for Requeue — the journal-recovery round trip.
func TestDeadLetterRestoreRoundTrip(t *testing.T) {
	// First life: three records captured by the persist hook.
	first := NewDeadLetterLog()
	var durable []DeadLetter
	first.SetPersistence(func(dl DeadLetter) { durable = append(durable, dl) }, nil)
	first.Add(DeadLetter{Activity: "invoke", Key: "a", Attempts: 3})
	first.Add(DeadLetter{Activity: "invoke", Key: "b", Attempts: 5})
	first.Add(DeadLetter{Activity: "invoke", Key: "c", Attempts: 1})

	// Second life: restore from the durable copies.
	second := NewDeadLetterLog()
	var rePersisted int
	second.SetPersistence(func(DeadLetter) { rePersisted++ }, nil)
	second.Restore(durable)
	if rePersisted != 0 {
		t.Fatalf("Restore re-persisted %d already-durable records", rePersisted)
	}
	if second.Len() != 3 {
		t.Fatalf("restored log has %d records, want 3", second.Len())
	}

	// Sequence allocation continues after the restored high-water mark.
	dl := second.Add(DeadLetter{Activity: "invoke", Key: "d"})
	if dl.Seq != 4 {
		t.Fatalf("post-restore Seq = %d, want 4", dl.Seq)
	}
	if rePersisted != 1 {
		t.Fatalf("new record after restore persisted %d times, want 1", rePersisted)
	}

	// Requeue semantics survive the round trip.
	if got := second.Requeue("b"); len(got) != 1 || got[0].Attempts != 5 {
		t.Fatalf("requeue after restore = %+v, want the original record for b", got)
	}
	want := []string{"a", "c", "d"}
	got := second.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys after requeue = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys after requeue = %v, want %v", got, want)
		}
	}
}
