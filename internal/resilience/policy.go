// Package resilience provides the reliability contract the surveyed
// workflow products sell: retry policies with exponential backoff and
// deterministic jitter, per-attempt and overall deadlines, a circuit
// breaker with closed/open/half-open states, and a dead-letter log for
// invocations whose retries are exhausted.
//
// The package is deliberately substrate-agnostic: it knows nothing about
// the service bus, the SQL engine, or the workflow engine. The product
// layers (engine.Invoke, bis.SQLActivity, mswf, orasoa) wire policies into
// their activities and surface every attempt, backoff, breaker transition,
// and dead-letter record through their monitoring surfaces, so the paper's
// transaction-mode discussion (short-running vs long-running processes,
// atomic SQL sequences, fault handlers) becomes an executable and testable
// reliability matrix.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy describes how an operation is retried. The zero value means
// "exactly one attempt, no backoff, no deadlines".
type Policy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Values <= 0 mean one attempt.
	MaxAttempts int

	// InitialBackoff is the delay before the second attempt. Each further
	// retry multiplies the delay by Multiplier (default 2), capped at
	// MaxBackoff (if > 0).
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	Multiplier     float64

	// Jitter is the fraction [0,1] of each backoff that is randomized:
	// the effective delay is d*(1-Jitter) + u*d*Jitter with u uniform in
	// [0,1).
	//
	// With Seed != 0 the jitter stream is deterministic per Do call
	// (reproducible tests). With Seed == 0 — the common production
	// configuration — jitter draws from a process-wide mutex-guarded
	// source, so concurrent unseeded policies get independent streams.
	// (Historically Seed == 0 seeded every Do call with the same
	// constant, which made all unseeded instances back off in lockstep:
	// a thundering herd exactly when jitter was supposed to prevent
	// one.)
	Jitter float64
	Seed   int64

	// PerAttemptTimeout bounds each attempt. A timed-out attempt counts as
	// a transient failure; the abandoned operation's late result is
	// discarded. Zero disables the per-attempt deadline.
	PerAttemptTimeout time.Duration

	// OverallDeadline bounds the whole retry loop (attempts plus backoff).
	// When the next backoff would exceed the budget the loop gives up with
	// reason "deadline". Zero disables the overall deadline.
	OverallDeadline time.Duration

	// Classify reports whether an error is retryable. Nil installs
	// DefaultClassify: retry unless the error (chain) declares itself
	// non-temporary via a `Temporary() bool` method (see wsbus.Permanent).
	Classify func(error) bool

	// Sleep and Now are test hooks; nil means time.Sleep / time.Now.
	Sleep func(time.Duration)
	Now   func() time.Time
}

// NewPolicy builds a retry policy with the common defaults: doubling
// backoff, no jitter, no deadlines, default transient/permanent
// classification.
func NewPolicy(maxAttempts int, initialBackoff time.Duration) *Policy {
	return &Policy{MaxAttempts: maxAttempts, InitialBackoff: initialBackoff, Multiplier: 2}
}

// Attempts returns the effective number of attempts.
func (p *Policy) Attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// lockedSource is a rand.Source safe for concurrent use. The derived
// *rand.Rand only calls Int63 (Float64 is Int63-based), so guarding the
// source suffices.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// sharedJitter is the process-wide jitter source used by every policy
// with Seed == 0. Sharing one mutex-guarded source (rather than seeding
// per call) guarantees concurrent retry loops draw from disjoint points
// of a single stream and therefore never back off in lockstep.
var sharedJitter = rand.New(&lockedSource{src: rand.NewSource(time.Now().UnixNano())})

// jitterRand returns the RNG Do should use for this policy: nil when
// jitter is disabled, a fresh deterministic stream when Seed != 0, and
// the shared locked source otherwise.
func (p *Policy) jitterRand() *rand.Rand {
	if p.Jitter <= 0 {
		return nil
	}
	if p.Seed != 0 {
		return rand.New(rand.NewSource(p.Seed))
	}
	return sharedJitter
}

// BackoffFor returns the backoff before attempt n+1 (n is the 1-based
// attempt that just failed), using rng for jitter.
func (p *Policy) BackoffFor(n int, rng *rand.Rand) time.Duration {
	d := float64(p.InitialBackoff)
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if p.Jitter > 0 && rng != nil {
		d = d*(1-p.Jitter) + rng.Float64()*d*p.Jitter
	}
	return time.Duration(d)
}

func (p *Policy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (p *Policy) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

func (p *Policy) classify(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return DefaultClassify(err)
}

// DefaultClassify retries every error unless the error chain declares
// itself permanent via a `Temporary() bool` method returning false (the
// wsbus.Transient / wsbus.Permanent markers).
func DefaultClassify(err error) bool {
	var t interface{ Temporary() bool }
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return true
}

// Observer receives the retry loop's lifecycle events. All callbacks are
// optional and are invoked from the caller's goroutine (never from the
// abandoned goroutine of a timed-out attempt), so observers may safely
// touch instance state and trace recorders.
type Observer struct {
	OnAttempt func(attempt, max int)
	OnSuccess func(attempt int)
	OnFailure func(attempt int, err error)
	OnBackoff func(attempt int, d time.Duration)
	OnGiveUp  func(attempt int, err error, reason string)
}

func (o Observer) attempt(n, max int) {
	if o.OnAttempt != nil {
		o.OnAttempt(n, max)
	}
}

func (o Observer) success(n int) {
	if o.OnSuccess != nil {
		o.OnSuccess(n)
	}
}

func (o Observer) failure(n int, err error) {
	if o.OnFailure != nil {
		o.OnFailure(n, err)
	}
}

func (o Observer) backoff(n int, d time.Duration) {
	if o.OnBackoff != nil {
		o.OnBackoff(n, d)
	}
}

func (o Observer) giveUp(n int, err error, reason string) {
	if o.OnGiveUp != nil {
		o.OnGiveUp(n, err, reason)
	}
}

// Give-up reasons reported by Do.
const (
	ReasonExhausted = "exhausted" // MaxAttempts failed
	ReasonPermanent = "permanent" // error classified non-retryable
	ReasonDeadline  = "deadline"  // overall deadline would be exceeded
	ReasonShed      = "SHED"      // admission control refused the instance before it ran
)

// AbandonedError is returned when a retry loop gives up: the retries were
// exhausted, the error was classified permanent, or the overall deadline
// ran out. It wraps the last attempt's error.
type AbandonedError struct {
	Reason   string
	Attempts int
	Err      error
}

// Error implements error.
func (e *AbandonedError) Error() string {
	return fmt.Sprintf("resilience: gave up after %d attempt(s) (%s): %v", e.Attempts, e.Reason, e.Err)
}

// Unwrap exposes the last attempt's error.
func (e *AbandonedError) Unwrap() error { return e.Err }

// TimeoutError is the failure recorded for an attempt that exceeded the
// per-attempt deadline. It is transient by definition.
type TimeoutError struct{ After time.Duration }

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("resilience: attempt timed out after %s", e.After)
}

// Temporary marks timeouts retryable.
func (e *TimeoutError) Temporary() bool { return true }

// Do runs op under the policy and returns its first successful result.
// Attempts are numbered from 1. A nil policy means a single bare attempt.
//
// When PerAttemptTimeout is set, op runs in a helper goroutine; on timeout
// the attempt is abandoned and the late result is discarded, so op must
// tolerate running to completion after the loop has moved on (the in-
// process analog of a network call whose response arrives after the client
// gave up).
func Do[T any](p *Policy, obs Observer, op func(attempt int) (T, error)) (T, error) {
	var zero T
	if p == nil {
		p = &Policy{}
	}
	start := p.now()
	max := p.Attempts()
	rng := p.jitterRand()
	var lastErr error
	for n := 1; n <= max; n++ {
		obs.attempt(n, max)
		v, err := runAttempt(p, n, op)
		if err == nil {
			obs.success(n)
			return v, nil
		}
		lastErr = err
		obs.failure(n, err)
		if !p.classify(err) {
			obs.giveUp(n, err, ReasonPermanent)
			return zero, &AbandonedError{Reason: ReasonPermanent, Attempts: n, Err: err}
		}
		if n == max {
			break
		}
		d := p.BackoffFor(n, rng)
		if p.OverallDeadline > 0 && p.now().Sub(start)+d > p.OverallDeadline {
			obs.giveUp(n, err, ReasonDeadline)
			return zero, &AbandonedError{Reason: ReasonDeadline, Attempts: n, Err: err}
		}
		if d > 0 {
			obs.backoff(n, d)
			p.sleep(d)
		}
	}
	obs.giveUp(max, lastErr, ReasonExhausted)
	return zero, &AbandonedError{Reason: ReasonExhausted, Attempts: max, Err: lastErr}
}

// DoErr is the result-less convenience form of Do.
func (p *Policy) DoErr(obs Observer, op func(attempt int) error) error {
	_, err := Do(p, obs, func(n int) (struct{}, error) {
		return struct{}{}, op(n)
	})
	return err
}

// runAttempt executes one attempt, honoring the per-attempt timeout.
// (A free function because Go methods cannot be generic.)
func runAttempt[T any](p *Policy, n int, op func(int) (T, error)) (T, error) {
	if p.PerAttemptTimeout <= 0 {
		return op(n)
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1) // buffered: a late result must not leak the goroutine
	go func() {
		v, err := op(n)
		ch <- outcome{v, err}
	}()
	timer := time.NewTimer(p.PerAttemptTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-timer.C:
		var zero T
		return zero, &TimeoutError{After: p.PerAttemptTimeout}
	}
}

// Abandoned extracts the AbandonedError from an error chain (nil if the
// error did not come from a give-up).
func Abandoned(err error) *AbandonedError {
	var a *AbandonedError
	if errors.As(err, &a) {
		return a
	}
	return nil
}
