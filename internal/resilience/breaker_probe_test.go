package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHalfOpenProbeBound pins the probe-storm bugfix: before it, Allow()
// returned true unconditionally while half-open, so every goroutine
// waiting out an open circuit probed the recovering service at once the
// moment the cooldown elapsed. Now half-open admits at most
// HalfOpenProbes in-flight probes (default 1); the rest are refused until
// a probe settles.
func TestHalfOpenProbeBound(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{FailureThreshold: 1, Cooldown: time.Second,
		Clock: func() time.Time { return now }}

	// Trip the circuit, then let the cooldown elapse.
	if !b.Allow() {
		t.Fatal("closed breaker must admit")
	}
	b.OnFailure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	now = now.Add(2 * time.Second)

	// A storm of concurrent callers races for the half-open slot(s).
	const callers = 50
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}

	// The probe slot is held until the in-flight call settles...
	if b.Allow() {
		t.Fatal("second probe admitted while the first is still in flight")
	}
	// ...then a failed probe reopens the circuit and fails fast again.
	b.OnFailure()
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open circuit must refuse before the cooldown")
	}
}

// TestHalfOpenProbeBoundConfigurable exercises a wider probe budget:
// HalfOpenProbes in-flight calls are admitted, the next is refused, and
// settling one probe frees exactly one slot.
func TestHalfOpenProbeBoundConfigurable(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{FailureThreshold: 1, Cooldown: time.Second,
		SuccessThreshold: 10, HalfOpenProbes: 3,
		Clock: func() time.Time { return now }}

	b.Allow()
	b.OnFailure()
	now = now.Add(2 * time.Second)

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("probe %d refused within the budget of 3", i)
		}
	}
	if b.Allow() {
		t.Fatal("4th in-flight probe admitted beyond the budget")
	}
	b.OnSuccess() // settle one probe; circuit stays half-open (threshold 10)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("settled probe slot not released")
	}
	if b.Allow() {
		t.Fatal("budget exceeded after slot reuse")
	}
}
