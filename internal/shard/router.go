package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wfsql/internal/sched"
)

// ErrUnroutable is returned when a submission's home shard is failing
// over (or down), the bounded buffering window elapsed, and no reroute
// target was available. Use errors.Is to classify router refusals —
// they are the fleet-level analogue of an admission shed.
var ErrUnroutable = errors.New("shard: no routable shard for key")

// RouterConfig wires a Router to its placement ring, health table, and
// per-shard admission pools.
type RouterConfig struct {
	Ring   *Ring
	Health *Health

	// FailoverWait bounds how long a submission for a failing-over home
	// shard is buffered (polling for the promotion) before the router
	// gives up — rerouting if enabled, refusing with ErrUnroutable
	// otherwise. Values <= 0 mean 2s.
	FailoverWait time.Duration

	// RetryEvery is the buffering poll cadence (<= 0 means 1ms).
	RetryEvery time.Duration

	// Reroute, when true, lets a submission fall through to the next
	// routable ring successor after FailoverWait expires. Off by
	// default: rerouting moves a key off its home shard, so per-shard
	// placement accounting (and any shard-local state) no longer holds
	// for that instance.
	Reroute bool
}

// RouterStats is a snapshot of the router's disposition counters.
type RouterStats struct {
	Placed     []int64 // submissions admitted per shard (home or rerouted)
	Buffered   int64   // submissions that waited out a failover window
	Rerouted   int64   // submissions placed on a ring successor
	Unroutable int64   // submissions refused with ErrUnroutable
}

// Router fronts a fleet of shards: Place by consistent hash, gate on
// shard health (buffering across a failover window instead of
// erroring), then hand the job to the home shard's own admission pool —
// per-shard queues, so a hot shard sheds or browns out without
// affecting its siblings' admission.
type Router struct {
	cfg   RouterConfig
	pools []*sched.Pool

	mu         sync.Mutex
	placed     []int64
	buffered   int64
	rerouted   int64
	unroutable int64
}

// NewRouter builds a router over one admission pool per shard; pool i
// serves ring shard i.
func NewRouter(cfg RouterConfig, pools []*sched.Pool) *Router {
	if cfg.FailoverWait <= 0 {
		cfg.FailoverWait = 2 * time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = time.Millisecond
	}
	return &Router{cfg: cfg, pools: pools, placed: make([]int64, len(pools))}
}

// Place returns the home shard for key without submitting anything.
func (r *Router) Place(key string) int { return r.cfg.Ring.Place(key) }

// Pool returns shard i's admission pool.
func (r *Router) Pool(i int) *sched.Pool { return r.pools[i] }

// Submit places key on its home shard and offers mk(shard) to that
// shard's admission pool. If the home shard is failing over, the
// submission is buffered — re-polled every RetryEvery up to
// FailoverWait — so a client riding out a takeover sees latency, not an
// error. When the window expires the router reroutes to the next
// routable ring successor (if enabled) or refuses with ErrUnroutable.
// The returned int is the shard that actually received the job (-1 on
// refusal); a non-nil error otherwise carries the pool's admission
// verdict (e.g. *admit.ShedError from a full Shed-policy queue).
func (r *Router) Submit(ctx context.Context, key string, mk func(shard int) sched.CtxJob) (int, error) {
	home := r.cfg.Ring.Place(key)
	if home < 0 {
		return -1, ErrUnroutable
	}
	target := home
	if !r.cfg.Health.State(home).Routable() {
		waited, ok := r.awaitRoutable(ctx, home)
		if waited {
			r.mu.Lock()
			r.buffered++
			r.mu.Unlock()
		}
		if !ok {
			target = -1
			if r.cfg.Reroute {
				for _, s := range r.cfg.Ring.Successors(key)[1:] {
					if r.cfg.Health.State(s).Routable() {
						target = s
						break
					}
				}
			}
			if target < 0 {
				r.mu.Lock()
				r.unroutable++
				r.mu.Unlock()
				return -1, fmt.Errorf("%w (home shard %d is %s)", ErrUnroutable, home, r.cfg.Health.State(home))
			}
			r.mu.Lock()
			r.rerouted++
			r.mu.Unlock()
		}
	}
	if err := r.pools[target].Submit(ctx, mk(target)); err != nil {
		return target, err
	}
	r.mu.Lock()
	r.placed[target]++
	r.mu.Unlock()
	return target, nil
}

// awaitRoutable polls shard i's health until it is routable again,
// bounded by FailoverWait and ctx. It reports whether any waiting
// happened and whether the shard became routable.
func (r *Router) awaitRoutable(ctx context.Context, i int) (waited, ok bool) {
	deadline := time.Now().Add(r.cfg.FailoverWait)
	for {
		if r.cfg.Health.State(i).Routable() {
			return waited, true
		}
		if r.cfg.Health.State(i) == Down {
			return waited, false
		}
		if time.Now().After(deadline) {
			return waited, false
		}
		waited = true
		select {
		case <-ctx.Done():
			return waited, false
		case <-time.After(r.cfg.RetryEvery):
		}
	}
}

// Stats returns a snapshot of the router's disposition counters.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RouterStats{
		Placed:     append([]int64(nil), r.placed...),
		Buffered:   r.buffered,
		Rerouted:   r.rerouted,
		Unroutable: r.unroutable,
	}
}
