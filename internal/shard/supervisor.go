package shard

import (
	"sync"
	"time"
)

// SupervisorConfig wires the fleet supervisor to its probe and failover
// closures. The supervisor owns the policy (how many misses before a
// takeover); the closures own the mechanism (what a probe checks, how a
// standby is promoted) — injected by the fleet facade so this package
// stays ignorant of leases and journals.
type SupervisorConfig struct {
	Health *Health

	// Probe reports whether shard i looks alive: typically "process
	// responds and its lease is fresh". Called once per shard per check.
	Probe func(shard int) bool

	// Failover promotes shard i's standby. Called at most once per
	// failure (guarded by Health.StartFailover); an error marks the
	// shard Down.
	Failover func(shard int) error

	// FailAfter is the consecutive-miss count that triggers a failover
	// (values < 1 mean 2). Health's suspectAfter should be <= FailAfter
	// so the Suspect state is observable between the first miss and the
	// takeover.
	FailAfter int

	// Interval is the background check cadence for Start (values <= 0
	// mean 50ms). Deterministic tests skip Start and call CheckOnce.
	Interval time.Duration

	// OnFailoverError, when non-nil, observes failover failures (the
	// shard is already marked Down when it runs).
	OnFailoverError func(shard int, err error)
}

// Supervisor turns missed probes into failovers: each check sweeps all
// shards, feeding Beat/Miss into the health table, and drives the
// FailingOver transition plus the injected takeover once a shard's
// misses reach FailAfter.
type Supervisor struct {
	cfg    SupervisorConfig
	shards int

	mu      sync.Mutex
	stopped bool
}

// NewSupervisor builds a supervisor over n shards.
func NewSupervisor(n int, cfg SupervisorConfig) *Supervisor {
	if cfg.FailAfter < 1 {
		cfg.FailAfter = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	return &Supervisor{cfg: cfg, shards: n}
}

// CheckOnce performs one synchronous sweep: probe every shard, record
// beats and misses, and run a failover inline for any shard whose
// consecutive misses reached FailAfter. Failovers are sequential within
// a sweep — losing multiple shards at once recovers them one at a time,
// which keeps the takeover path single-writer per standby.
func (s *Supervisor) CheckOnce() {
	h := s.cfg.Health
	for i := 0; i < s.shards; i++ {
		switch h.State(i) {
		case FailingOver, Down:
			continue
		}
		if s.cfg.Probe(i) {
			h.Beat(i)
			continue
		}
		if h.Miss(i) < s.cfg.FailAfter {
			continue
		}
		if !h.StartFailover(i) {
			continue
		}
		if err := s.cfg.Failover(i); err != nil {
			h.MarkDown(i, "failover failed: "+err.Error())
			if s.cfg.OnFailoverError != nil {
				s.cfg.OnFailoverError(i, err)
			}
			continue
		}
		h.Promoted(i)
	}
}

// Start runs CheckOnce at the configured interval on a background
// goroutine until the returned stop function is called (stop blocks
// until the loop exits, so no check is in flight after it returns).
func (s *Supervisor) Start() (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.CheckOnce()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
