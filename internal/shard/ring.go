// Package shard is the fleet layer: placement of workflow instances
// onto N engine shards by consistent hashing, a per-shard health state
// machine fed by heartbeat probes, a router that fronts the shards with
// the PR 5 admission pools, and a supervisor that turns missed
// heartbeats into lease-fenced failovers. The package is deliberately
// generic — it knows nothing about environments, journals, or leases;
// the concrete wiring (StartPrimary per shard, WarmStandby takeover)
// lives in the root fleet facade, which injects probe and failover
// closures.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash placement ring with virtual nodes. Each
// shard contributes Replicas points on the ring; a key is placed on the
// shard owning the first point at or after the key's hash. Adding or
// removing one shard therefore remaps only the keys whose arc it owned
// — about 1/N of them — instead of reshuffling every instance the way
// `hash(key) % N` would.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	shards   map[int]struct{}
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultReplicas is the virtual-node count per shard. 64 keeps the
// arc-length imbalance across shards within a few percent for small N.
const DefaultReplicas = 64

// NewRing builds a ring over shards 0..n-1 with the given virtual-node
// count (values < 1 use DefaultReplicas).
func NewRing(n, replicas int) *Ring {
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas, shards: make(map[int]struct{})}
	for i := 0; i < n; i++ {
		r.Add(i)
	}
	return r
}

// Add inserts a shard's virtual nodes (no-op if already present).
func (r *Ring) Add(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[shard]; ok {
		return
	}
	r.shards[shard] = struct{}{}
	for v := 0; v < r.replicas; v++ {
		r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("shard-%d#%d", shard, v)), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a shard's virtual nodes; its keys fall through to the
// ring successors (no-op if absent).
func (r *Ring) Remove(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[shard]; !ok {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Place returns the shard owning key, or -1 on an empty ring.
func (r *Ring) Place(key string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return -1
	}
	return r.points[r.search(hashKey(key))].shard
}

// Successors returns the distinct shards in ring order starting at
// key's position — Successors(key)[0] is Place(key), the rest are the
// fallback order a router walks when the home shard is unroutable.
func (r *Ring) Successors(key string) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	out := make([]int, 0, len(r.shards))
	seen := make(map[int]struct{}, len(r.shards))
	start := r.search(hashKey(key))
	for i := 0; i < len(r.points) && len(out) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.shard]; dup {
			continue
		}
		seen[p.shard] = struct{}{}
		out = append(out, p.shard)
	}
	return out
}

// Shards returns the member shard indices in ascending order.
func (r *Ring) Shards() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// search returns the index of the first point at or after h (wrapping).
// Callers hold r.mu.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hashKey is FNV-1a with a splitmix64-style finalizer: raw FNV of
// near-identical strings ("shard-0#1", "shard-0#2", ...) clusters on
// the ring badly enough to skew arc lengths several-fold; the mix
// spreads the virtual nodes uniformly.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
