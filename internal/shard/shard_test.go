package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"wfsql/internal/admit"
	"wfsql/internal/sched"
)

// TestRingRemapFraction: the point of consistent hashing — growing the
// fleet from N to N+1 shards moves roughly 1/(N+1) of the keys, and
// every moved key lands on the new shard; modulo hashing would move
// nearly all of them.
func TestRingRemapFraction(t *testing.T) {
	const keys = 10000
	r := NewRing(4, 0)
	before := make([]int, keys)
	for i := range before {
		before[i] = r.Place(fmt.Sprintf("order#%d", i))
	}
	r.Add(4)
	moved := 0
	for i := range before {
		after := r.Place(fmt.Sprintf("order#%d", i))
		if after != before[i] {
			moved++
			if after != 4 {
				t.Fatalf("key %d moved from shard %d to %d, not to the new shard", i, before[i], after)
			}
		}
	}
	frac := float64(moved) / keys
	if frac < 0.05 || frac > 0.40 {
		t.Fatalf("adding 1-of-5 shards remapped %.1f%% of keys, want ~20%%", 100*frac)
	}
}

// TestRingRemoveRemapsOnlyOwnedKeys: removing a shard must not disturb
// placements of keys it did not own.
func TestRingRemoveRemapsOnlyOwnedKeys(t *testing.T) {
	const keys = 5000
	r := NewRing(4, 0)
	before := make([]int, keys)
	for i := range before {
		before[i] = r.Place(fmt.Sprintf("order#%d", i))
	}
	r.Remove(2)
	for i := range before {
		after := r.Place(fmt.Sprintf("order#%d", i))
		if before[i] != 2 && after != before[i] {
			t.Fatalf("key %d on shard %d moved to %d when shard 2 left", i, before[i], after)
		}
		if before[i] == 2 && after == 2 {
			t.Fatalf("key %d still placed on removed shard 2", i)
		}
	}
}

// TestRingBalance: virtual nodes keep arc lengths close enough that no
// shard owns a wildly disproportionate key share.
func TestRingBalance(t *testing.T) {
	const keys = 12000
	r := NewRing(3, 0)
	counts := make(map[int]int)
	for i := 0; i < keys; i++ {
		counts[r.Place(fmt.Sprintf("order#%d", i))]++
	}
	for s, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("shard %d owns %.1f%% of keys, want roughly a third", s, 100*frac)
		}
	}
}

// TestRingSuccessorsOrder: Successors starts at the home shard and
// enumerates every member exactly once.
func TestRingSuccessorsOrder(t *testing.T) {
	r := NewRing(3, 0)
	succ := r.Successors("order#7")
	if len(succ) != 3 {
		t.Fatalf("successors = %v, want all 3 shards", succ)
	}
	if succ[0] != r.Place("order#7") {
		t.Fatalf("successors[0] = %d, want home shard %d", succ[0], r.Place("order#7"))
	}
	seen := map[int]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("successors %v repeats shard %d", succ, s)
		}
		seen[s] = true
	}
}

// TestHealthStateMachine drives the full lifecycle Serving → Suspect →
// FailingOver → ServingOnStandby, checks Beat recovery from Suspect,
// the fencing latch, and the event log.
func TestHealthStateMachine(t *testing.T) {
	var events []Event
	h := NewHealth(2, 2, func(ev Event) { events = append(events, ev) })

	// One miss is below the suspect threshold; the shard stays Serving.
	if n := h.Miss(0); n != 1 || h.State(0) != Serving {
		t.Fatalf("after 1 miss: misses=%d state=%s, want 1/Serving", n, h.State(0))
	}
	// A beat wipes the misses; a later single miss is again below it.
	h.Beat(0)
	if n := h.Miss(0); n != 1 {
		t.Fatalf("beat did not reset misses: %d", n)
	}
	if h.Miss(0) != 2 || h.State(0) != Suspect {
		t.Fatalf("after 2 misses state = %s, want Suspect", h.State(0))
	}
	// Suspect recovers on a beat.
	h.Beat(0)
	if h.State(0) != Serving {
		t.Fatalf("beat on Suspect: state = %s, want Serving", h.State(0))
	}

	// Now fail for real.
	h.Miss(0)
	h.Miss(0)
	if !h.StartFailover(0) {
		t.Fatal("StartFailover refused on a Suspect shard")
	}
	if h.State(0) != FailingOver || h.State(0).Routable() {
		t.Fatalf("state = %s (routable=%v), want unroutable FailingOver", h.State(0), h.State(0).Routable())
	}
	// A second failover attempt must lose the race.
	if h.StartFailover(0) {
		t.Fatal("StartFailover won twice for one failure")
	}
	h.Promoted(0)
	if h.State(0) != ServingOnStandby || !h.State(0).Routable() {
		t.Fatalf("state = %s, want routable ServingOnStandby", h.State(0))
	}

	// Fencing latches are events, not state changes.
	h.Fenced(0)
	h.Fenced(0)
	if h.FencedCount(0) != 2 {
		t.Fatalf("FencedCount = %d, want 2", h.FencedCount(0))
	}
	if h.State(0) != ServingOnStandby {
		t.Fatalf("fence latch changed state to %s", h.State(0))
	}

	// Shard 1 was never touched.
	if h.State(1) != Serving {
		t.Fatalf("untouched shard state = %s", h.State(1))
	}

	wantTransitions := []State{Suspect, Serving, Suspect, FailingOver, ServingOnStandby, ServingOnStandby, ServingOnStandby}
	if len(events) != len(wantTransitions) {
		t.Fatalf("recorded %d events %v, want %d", len(events), events, len(wantTransitions))
	}
	for i, want := range wantTransitions {
		if events[i].To != want {
			t.Fatalf("event %d = %+v, want To=%s", i, events[i], want)
		}
	}
	if got := h.Events(); len(got) != len(events) {
		t.Fatalf("Events() returned %d, callbacks saw %d", len(got), len(events))
	}
}

// TestSupervisorDrivesFailover: consecutive probe misses walk a shard
// through Suspect to FailingOver, the injected takeover runs exactly
// once, and the shard comes back ServingOnStandby. Healthy shards are
// beaten, not failed.
func TestSupervisorDrivesFailover(t *testing.T) {
	h := NewHealth(3, 1, nil)
	var dead atomic.Bool
	var failovers atomic.Int64
	sup := NewSupervisor(3, SupervisorConfig{
		Health: h,
		Probe:  func(i int) bool { return i != 1 || !dead.Load() },
		Failover: func(i int) error {
			if i != 1 {
				return fmt.Errorf("failover on wrong shard %d", i)
			}
			if failovers.Add(1) > 1 {
				return errors.New("no standby left")
			}
			return nil
		},
		FailAfter: 2,
	})

	sup.CheckOnce()
	for i := 0; i < 3; i++ {
		if h.State(i) != Serving {
			t.Fatalf("healthy sweep left shard %d %s", i, h.State(i))
		}
	}

	dead.Store(true)
	sup.CheckOnce()
	if h.State(1) != Suspect {
		t.Fatalf("after first miss: %s, want Suspect", h.State(1))
	}
	sup.CheckOnce()
	if h.State(1) != ServingOnStandby {
		t.Fatalf("after second miss: %s, want ServingOnStandby", h.State(1))
	}
	if failovers.Load() != 1 {
		t.Fatalf("failover ran %d times, want 1", failovers.Load())
	}
	// Further sweeps leave the promoted shard alone (probe says dead —
	// it checks the old process — but a promoted shard re-enters the
	// miss cycle only from ServingOnStandby; with no second standby the
	// next takeover fails and the shard goes Down).
	sup.CheckOnce()
	sup.CheckOnce()
	if got := h.State(1); got != Down {
		t.Fatalf("second death: %s, want Down (no standby left)", got)
	}
	if failovers.Load() != 2 {
		t.Fatalf("second failover attempt count = %d, want 2", failovers.Load())
	}
}

// TestSupervisorMarksDownOnFailoverError: a failed takeover is terminal
// and surfaced via OnFailoverError.
func TestSupervisorMarksDownOnFailoverError(t *testing.T) {
	h := NewHealth(1, 1, nil)
	boom := errors.New("promote: lease held")
	var reported error
	sup := NewSupervisor(1, SupervisorConfig{
		Health:          h,
		Probe:           func(int) bool { return false },
		Failover:        func(int) error { return boom },
		FailAfter:       1,
		OnFailoverError: func(_ int, err error) { reported = err },
	})
	sup.CheckOnce()
	if h.State(0) != Down {
		t.Fatalf("state = %s, want Down", h.State(0))
	}
	if !errors.Is(reported, boom) {
		t.Fatalf("OnFailoverError got %v, want %v", reported, boom)
	}
}

// newTestPools builds n trivial single-worker pools whose jobs record
// which shard ran them.
func newTestPools(n int, ran []atomic.Int64) []*sched.Pool {
	pools := make([]*sched.Pool, n)
	for i := range pools {
		pools[i] = sched.NewPool(sched.PoolConfig{Workers: 1, QueueBound: 64})
	}
	return pools
}

func countingJob(ran []atomic.Int64) func(shard int) sched.CtxJob {
	return func(shard int) sched.CtxJob {
		return sched.CtxJob{Name: "job", Class: admit.Normal, Run: func(context.Context) error {
			ran[shard].Add(1)
			return nil
		}}
	}
}

// TestRouterPlacesOnHomeShard: healthy fleet — every key runs on the
// shard the ring places it on, and the per-shard placed counters agree.
func TestRouterPlacesOnHomeShard(t *testing.T) {
	const n = 3
	ran := make([]atomic.Int64, n)
	pools := newTestPools(n, ran)
	ring := NewRing(n, 0)
	h := NewHealth(n, 1, nil)
	r := NewRouter(RouterConfig{Ring: ring, Health: h}, pools)

	want := make([]int64, n)
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("order#%d", i)
		want[ring.Place(key)]++
		target, err := r.Submit(context.Background(), key, countingJob(ran))
		if err != nil {
			t.Fatalf("submit %s: %v", key, err)
		}
		if target != ring.Place(key) {
			t.Fatalf("key %s routed to %d, home is %d", key, target, ring.Place(key))
		}
	}
	for i := range pools {
		pools[i].Drain()
	}
	stats := r.Stats()
	for i := 0; i < n; i++ {
		if ran[i].Load() != want[i] || stats.Placed[i] != want[i] {
			t.Fatalf("shard %d ran %d placed %d, want %d", i, ran[i].Load(), stats.Placed[i], want[i])
		}
	}
	if stats.Buffered != 0 || stats.Rerouted != 0 || stats.Unroutable != 0 {
		t.Fatalf("healthy fleet recorded buffering: %+v", stats)
	}
}

// TestRouterBuffersAcrossFailover: a submission for a FailingOver shard
// waits — bounded — and lands on the home shard once it is promoted,
// instead of erroring.
func TestRouterBuffersAcrossFailover(t *testing.T) {
	const n = 2
	ran := make([]atomic.Int64, n)
	pools := newTestPools(n, ran)
	ring := NewRing(n, 0)
	h := NewHealth(n, 1, nil)
	r := NewRouter(RouterConfig{Ring: ring, Health: h, FailoverWait: 5 * time.Second}, pools)

	key := "order#0"
	home := ring.Place(key)
	h.Miss(home)
	h.StartFailover(home)

	done := make(chan error, 1)
	var target int
	go func() {
		var err error
		target, err = r.Submit(context.Background(), key, countingJob(ran))
		done <- err
	}()

	select {
	case err := <-done:
		t.Fatalf("submit returned %v while the home shard was failing over", err)
	case <-time.After(50 * time.Millisecond):
	}
	h.Promoted(home)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("buffered submit failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("buffered submit never completed after promotion")
	}
	if target != home {
		t.Fatalf("buffered submit landed on shard %d, want home %d", target, home)
	}
	for i := range pools {
		pools[i].Drain()
	}
	if stats := r.Stats(); stats.Buffered != 1 || ran[home].Load() != 1 {
		t.Fatalf("stats = %+v, ran[home] = %d; want 1 buffered run on home", stats, ran[home].Load())
	}
}

// TestRouterReroutesAfterDeadline: with Reroute enabled, a submission
// whose home shard stays down past FailoverWait falls through to the
// ring successor; without it, the router refuses with ErrUnroutable.
func TestRouterReroutesAfterDeadline(t *testing.T) {
	const n = 2
	key := "order#0"

	mk := func(reroute bool) (*Router, []*sched.Pool, []atomic.Int64, int) {
		ran := make([]atomic.Int64, n)
		pools := newTestPools(n, ran)
		ring := NewRing(n, 0)
		h := NewHealth(n, 1, nil)
		home := ring.Place(key)
		h.MarkDown(home, "test")
		r := NewRouter(RouterConfig{Ring: ring, Health: h, FailoverWait: 10 * time.Millisecond, Reroute: reroute}, pools)
		return r, pools, ran, home
	}

	r, pools, ran, home := mk(true)
	target, err := r.Submit(context.Background(), key, countingJob(ran))
	if err != nil {
		t.Fatalf("reroute submit: %v", err)
	}
	if target == home {
		t.Fatalf("rerouted submit landed on the down home shard %d", home)
	}
	for i := range pools {
		pools[i].Drain()
	}
	if stats := r.Stats(); stats.Rerouted != 1 || ran[target].Load() != 1 {
		t.Fatalf("stats = %+v, want 1 reroute onto shard %d", stats, target)
	}

	r2, pools2, ran2, _ := mk(false)
	if _, err := r2.Submit(context.Background(), key, countingJob(ran2)); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("no-reroute submit err = %v, want ErrUnroutable", err)
	}
	for i := range pools2 {
		pools2[i].Drain()
	}
	if stats := r2.Stats(); stats.Unroutable != 1 {
		t.Fatalf("stats = %+v, want 1 unroutable", stats)
	}
}

// TestRouterIsolatesHotShard: per-shard admission queues — saturating
// one shard's Shed-policy queue sheds that shard's overflow while the
// sibling admits everything; the hot shard cannot brown out the fleet.
func TestRouterIsolatesHotShard(t *testing.T) {
	const n = 2
	ran := make([]atomic.Int64, n)
	ring := NewRing(n, 0)
	h := NewHealth(n, 1, nil)

	// Find one key per shard.
	keyFor := func(shard int) string {
		for i := 0; ; i++ {
			key := fmt.Sprintf("order#%d", i)
			if ring.Place(key) == shard {
				return key
			}
		}
	}
	hotKey, coldKey := keyFor(0), keyFor(1)

	release := make(chan struct{})
	// Shard 0 is the hot one: a 1-deep Shed queue behind a blocked
	// worker. Shard 1 keeps a healthy bound.
	pools := []*sched.Pool{
		sched.NewPool(sched.PoolConfig{Workers: 1, QueueBound: 1, Policy: admit.Shed}),
		sched.NewPool(sched.PoolConfig{Workers: 1, QueueBound: 8, Policy: admit.Shed}),
	}
	r := NewRouter(RouterConfig{Ring: ring, Health: h}, pools)

	slowJob := func(shard int) sched.CtxJob {
		return sched.CtxJob{Name: "hot", Run: func(context.Context) error {
			<-release
			ran[shard].Add(1)
			return nil
		}}
	}
	// Saturate shard 0: one running (blocked), one queued, rest shed.
	const hotSubmits = 8
	var shed int
	for i := 0; i < hotSubmits; i++ {
		if _, err := r.Submit(context.Background(), hotKey, slowJob); err != nil {
			var se *admit.ShedError
			if !errors.As(err, &se) {
				t.Fatalf("hot submit %d: %v", i, err)
			}
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("saturating a 1-deep Shed queue shed nothing")
	}
	// The cold shard still admits and completes everything.
	for i := 0; i < 4; i++ {
		if _, err := r.Submit(context.Background(), coldKey, countingJob(ran)); err != nil {
			t.Fatalf("cold submit %d refused while sibling is hot: %v", i, err)
		}
	}
	close(release)
	cold := pools[1].Drain()
	hot := pools[0].Drain()
	if cold.Shed != 0 || cold.Completed != 4 {
		t.Fatalf("cold shard report %+v, want 4 completed 0 shed", cold)
	}
	if hot.Shed == 0 {
		t.Fatalf("hot shard report %+v, want sheds", hot)
	}
	if hot.Completed+hot.Failed+hot.Shed != hot.Submitted || cold.Completed+cold.Failed+cold.Shed != cold.Submitted {
		t.Fatal("per-shard conservation violated")
	}
}
