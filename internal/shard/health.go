package shard

import (
	"sync"
	"time"
)

// State is a shard's position in the health state machine:
//
//	Serving --missed heartbeats--> Suspect --more misses--> FailingOver
//	   ^                             |                          |
//	   +------beat received----------+              takeover via standby
//	                                                            |
//	                                                            v
//	                                    Down <--error-- ServingOnStandby
//
// ServingOnStandby is Serving in every operational sense (the router
// places work there); the distinct state records that the shard is on
// its promoted standby with the original primary fenced behind it.
type State int

const (
	Serving State = iota
	Suspect
	FailingOver
	ServingOnStandby
	Down
)

func (s State) String() string {
	switch s {
	case Serving:
		return "Serving"
	case Suspect:
		return "Suspect"
	case FailingOver:
		return "FailingOver"
	case ServingOnStandby:
		return "ServingOnStandby"
	case Down:
		return "Down"
	}
	return "Unknown"
}

// Routable reports whether the router may hand new work to a shard in
// this state. Suspect stays routable — a missed probe is a hint, not a
// verdict, and shedding on the first miss would brown out healthy
// shards during GC pauses.
func (s State) Routable() bool {
	return s == Serving || s == Suspect || s == ServingOnStandby
}

// Event is one recorded health transition (or a fencing latch, which
// keeps From == To). Events are the shard-level surface for operator
// alerting: every zombie append refused by the journal's epoch guard
// shows up here, not just in a counter.
type Event struct {
	Shard    int
	From, To State
	Reason   string
	Time     time.Time
}

// Health tracks per-shard state, consecutive probe misses, and fencing
// latches. All transitions append to an event log and invoke the
// optional onEvent callback (outside the lock).
type Health struct {
	onEvent      func(Event)
	suspectAfter int
	now          func() time.Time

	mu     sync.Mutex
	states []State
	misses []int
	fenced []int64
	events []Event
}

// NewHealth tracks n shards, all initially Serving. A shard turns
// Suspect after suspectAfter consecutive missed probes (values < 1 mean
// 1). onEvent, when non-nil, receives every transition and fence latch.
func NewHealth(n, suspectAfter int, onEvent func(Event)) *Health {
	if suspectAfter < 1 {
		suspectAfter = 1
	}
	return &Health{
		onEvent:      onEvent,
		suspectAfter: suspectAfter,
		now:          time.Now,
		states:       make([]State, n),
		misses:       make([]int, n),
		fenced:       make([]int64, n),
	}
}

// SetClock injects the time source used to stamp events (tests share
// the fleet's manual clock).
func (h *Health) SetClock(now func() time.Time) { h.now = now }

// State returns shard i's current state.
func (h *Health) State(i int) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[i]
}

// Beat records a successful probe: the miss counter resets and a
// Suspect shard returns to Serving.
func (h *Health) Beat(i int) {
	h.mu.Lock()
	h.misses[i] = 0
	var ev *Event
	if h.states[i] == Suspect {
		ev = h.transition(i, Serving, "heartbeat recovered")
	}
	h.mu.Unlock()
	h.emit(ev)
}

// Miss records a failed probe and returns the consecutive-miss count.
// A Serving shard turns Suspect once the count reaches the threshold.
func (h *Health) Miss(i int) int {
	h.mu.Lock()
	h.misses[i]++
	n := h.misses[i]
	var ev *Event
	if (h.states[i] == Serving || h.states[i] == ServingOnStandby) && n >= h.suspectAfter {
		ev = h.transition(i, Suspect, "missed heartbeats")
	}
	h.mu.Unlock()
	h.emit(ev)
	return n
}

// StartFailover moves a Suspect (or Serving — a probe can report an
// unambiguous death directly) shard to FailingOver and reports whether
// this call won the transition; a false return means a failover is
// already running or the shard is Down, and the caller must not start
// another takeover.
func (h *Health) StartFailover(i int) bool {
	h.mu.Lock()
	s := h.states[i]
	if s == FailingOver || s == Down {
		h.mu.Unlock()
		return false
	}
	ev := h.transition(i, FailingOver, "takeover started")
	h.mu.Unlock()
	h.emit(ev)
	return true
}

// Promoted completes a failover: the shard serves from its promoted
// standby and the miss counter resets.
func (h *Health) Promoted(i int) {
	h.mu.Lock()
	h.misses[i] = 0
	ev := h.transition(i, ServingOnStandby, "standby promoted")
	h.mu.Unlock()
	h.emit(ev)
}

// MarkDown records a terminal failure (failover error, second death
// with no standby left). Down shards are never routed to again.
func (h *Health) MarkDown(i int, reason string) {
	h.mu.Lock()
	ev := h.transition(i, Down, reason)
	h.mu.Unlock()
	h.emit(ev)
}

// Fenced latches one refused zombie append (journal.ErrFenced) as a
// shard-level event. The state does not change — fencing is evidence
// the protection worked, not a new failure.
func (h *Health) Fenced(i int) {
	h.mu.Lock()
	h.fenced[i]++
	s := h.states[i]
	ev := &Event{Shard: i, From: s, To: s, Reason: "zombie append fenced", Time: h.now()}
	h.events = append(h.events, *ev)
	h.mu.Unlock()
	h.emit(ev)
}

// FencedCount returns the number of fence latches recorded for shard i.
func (h *Health) FencedCount(i int) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fenced[i]
}

// Events returns a copy of the transition log.
func (h *Health) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}

// transition records a state change under h.mu and returns the event
// for post-unlock emission.
func (h *Health) transition(i int, to State, reason string) *Event {
	ev := &Event{Shard: i, From: h.states[i], To: to, Reason: reason, Time: h.now()}
	h.states[i] = to
	h.events = append(h.events, *ev)
	return ev
}

func (h *Health) emit(ev *Event) {
	if ev != nil && h.onEvent != nil {
		h.onEvent(*ev)
	}
}
