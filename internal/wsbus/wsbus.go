// Package wsbus is an in-process service bus standing in for the Web
// services the surveyed products invoke from workflows. The paper's
// running example calls a Web service OrderFromSupplier from an invoke
// activity; Figure 1 contrasts the *adapter* technology (data management
// masked as a service on a bus like this one) with *SQL inline support*
// (data management in the process logic). Both sides of that contrast are
// implemented here and in the product layers.
//
// Requests and responses are flat name/value maps, matching the
// message-part granularity the paper's examples use. An injectable
// per-call latency lets benchmarks model remote invocation cost.
package wsbus

import (
	"fmt"
	"sync"
	"time"
)

// Message is a flat set of named parts (a simplified WSDL message).
type Message map[string]string

// Handler implements a service operation.
type Handler func(req Message) (Message, error)

// Bus is a registry of named services.
type Bus struct {
	mu       sync.RWMutex
	services map[string]Handler
	latency  time.Duration
	calls    int64
}

// New creates an empty bus.
func New() *Bus {
	return &Bus{services: map[string]Handler{}}
}

// Register installs a service under a name. Re-registering replaces the
// previous handler.
func (b *Bus) Register(name string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.services[name] = h
}

// SetLatency injects a synthetic per-call latency, modelling network and
// SOAP-stack overhead for benchmarks. Zero disables it.
func (b *Bus) SetLatency(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.latency = d
}

// Calls returns the number of invocations served.
func (b *Bus) Calls() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.calls
}

// Invoke calls the named service.
func (b *Bus) Invoke(service string, req Message) (Message, error) {
	b.mu.RLock()
	h, ok := b.services[service]
	lat := b.latency
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wsbus: no such service %s", service)
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	resp, err := h(req)
	if err != nil {
		return nil, fmt.Errorf("wsbus: service %s: %w", service, err)
	}
	return resp, nil
}

// Has reports whether a service is registered.
func (b *Bus) Has(service string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.services[service]
	return ok
}
