// Package wsbus is an in-process service bus standing in for the Web
// services the surveyed products invoke from workflows. The paper's
// running example calls a Web service OrderFromSupplier from an invoke
// activity; Figure 1 contrasts the *adapter* technology (data management
// masked as a service on a bus like this one) with *SQL inline support*
// (data management in the process logic). Both sides of that contrast are
// implemented here and in the product layers.
//
// Requests and responses are flat name/value maps, matching the
// message-part granularity the paper's examples use. An injectable
// per-call latency lets benchmarks model remote invocation cost.
//
// The bus is safe for concurrent use: the worker-pool instance
// scheduler dispatches invokes from many instance goroutines at once,
// handlers run outside the bus mutex (a slow service must not serialize
// unrelated invocations), and the attempt/success/panic counters are
// updated under it.
//
// # Fault semantics
//
// Invoke never lets a handler panic escape: panics are recovered into
// transient errors (a crashed service is indistinguishable from a dropped
// connection to the caller). Services can classify their own failures with
// Transient and Permanent so retry policies (internal/resilience) can
// discriminate; unclassified errors default to retryable.
//
// # Counter semantics
//
// Attempts counts every dispatched invocation — the attempt is counted as
// soon as the service is resolved, *before* the injected latency elapses
// and before the handler runs, so a call that then sleeps and fails still
// counts as one attempt. Successes counts only invocations whose handler
// returned without error. Retry tests depend on both counters; Calls is a
// legacy alias for Attempts.
package wsbus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wfsql/internal/obsv"
)

// Message is a flat set of named parts (a simplified WSDL message).
type Message map[string]string

// Handler implements a service operation.
type Handler func(req Message) (Message, error)

// classifiedError marks an error transient or permanent for retry
// policies. It satisfies the Temporary() bool convention that
// resilience.DefaultClassify inspects.
type classifiedError struct {
	err       error
	transient bool
}

// Error implements error.
func (e *classifiedError) Error() string {
	if e.transient {
		return "transient: " + e.err.Error()
	}
	return "permanent: " + e.err.Error()
}

// Unwrap exposes the cause.
func (e *classifiedError) Unwrap() error { return e.err }

// Temporary implements the classification convention.
func (e *classifiedError) Temporary() bool { return e.transient }

// Transient marks an error as retryable (a fault that may heal: timeout,
// overload, crash). Returns nil for nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{err: err, transient: true}
}

// Permanent marks an error as non-retryable (a fault retries cannot fix:
// validation failure, unknown operation). Returns nil for nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{err: err, transient: false}
}

// IsTransient reports whether the error chain is explicitly marked
// transient. Unmarked errors report false here but are still retried by
// resilience.DefaultClassify; use Classified to distinguish "unmarked"
// from "marked permanent".
func IsTransient(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// Classified reports the classification carried by the error chain and
// whether one was present at all.
func Classified(err error) (transient, ok bool) {
	var t interface{ Temporary() bool }
	if errors.As(err, &t) {
		return t.Temporary(), true
	}
	return false, false
}

// Bus is a registry of named services.
type Bus struct {
	mu        sync.RWMutex
	services  map[string]Handler
	counters  map[string]string // per-service "bus.calls.<name>" counter names, built at Register time
	latency   time.Duration
	attempts  int64
	successes int64
	panics    int64
	obs       *obsv.Observability
}

// SetObservability attaches (or with nil detaches) a tracing/metrics
// bundle: every Invoke then emits a bus span (parented under the
// tracer's ambient span — the activity currently executing) and feeds
// the bus.calls / bus.errors counters and the bus.latency_ms histogram.
func (b *Bus) SetObservability(o *obsv.Observability) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.obs = o
}

func (b *Bus) observability() *obsv.Observability {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.obs
}

// New creates an empty bus.
func New() *Bus {
	return &Bus{services: map[string]Handler{}, counters: map[string]string{}}
}

// Register installs a service under a name. Re-registering replaces the
// previous handler.
func (b *Bus) Register(name string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.services[name] = h
	b.counters[name] = "bus.calls." + name
}

// Decorate wraps the registered handler of a service with a middleware
// (used by the chaos layer to inject faults and latency without the
// service knowing). It fails if the service is not registered.
func (b *Bus) Decorate(name string, mw func(Handler) Handler) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, ok := b.services[name]
	if !ok {
		return fmt.Errorf("wsbus: no such service %s", name)
	}
	b.services[name] = mw(h)
	return nil
}

// SetLatency injects a synthetic per-call latency, modelling network and
// SOAP-stack overhead for benchmarks. Zero disables it.
func (b *Bus) SetLatency(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.latency = d
}

// Attempts returns the number of invocations dispatched (counted before
// the injected latency and before the handler runs — failed and timed-out
// calls count).
func (b *Bus) Attempts() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.attempts
}

// Successes returns the number of invocations whose handler completed
// without error.
func (b *Bus) Successes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.successes
}

// Panics returns the number of handler panics recovered by Invoke.
func (b *Bus) Panics() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.panics
}

// Calls returns the number of invocations served.
//
// Deprecated-style alias retained for existing monitoring code: Calls
// equals Attempts (an invocation is counted even when it then sleeps the
// injected latency and the handler fails).
func (b *Bus) Calls() int64 { return b.Attempts() }

// Invoke calls the named service. An unknown service is a permanent error
// (retries cannot register it); handler panics are recovered into
// transient errors so one crashing service cannot take down the engine.
func (b *Bus) Invoke(service string, req Message) (Message, error) {
	return b.InvokeCtx(context.Background(), service, req)
}

// InvokeCtx is Invoke with a caller budget. A context that is already
// done refuses the call before the attempt is counted; a context that
// expires during the injected latency abandons the wait immediately
// (the stand-in for tearing down a socket mid-call). Context errors
// are classified Permanent — a caller whose deadline has passed gains
// nothing from retrying, even though context.DeadlineExceeded itself
// reports Temporary() true — so retry policies stop instead of burning
// the remaining budget on attempts that cannot be awaited.
func (b *Bus) InvokeCtx(ctx context.Context, service string, req Message) (Message, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b.mu.RLock()
	h, ok := b.services[service]
	callCounter := b.counters[service]
	lat := b.latency
	obs := b.obs
	b.mu.RUnlock()
	if callCounter == "" { // unregistered service: still counted, off the cached path
		callCounter = "bus.calls." + service
	}
	span := obs.T().Start(obs.T().Ambient(), obsv.KindBus, service)
	obs.M().Counter("bus.calls").Inc()
	obs.M().Counter(callCounter).Inc()
	if !ok {
		err := Permanent(fmt.Errorf("wsbus: no such service %s", service))
		obs.M().Counter("bus.errors").Inc()
		span.Set("error", err.Error()).End(obsv.OutcomeFault)
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		err = Permanent(fmt.Errorf("wsbus: %s: caller budget exhausted: %w", service, err))
		obs.M().Counter("bus.errors").Inc()
		obs.M().Counter("bus.deadline_refused").Inc()
		span.Set("error", err.Error()).End(obsv.OutcomeFault)
		return nil, err
	}
	b.mu.Lock()
	b.attempts++ // counted before latency and handler outcome (see package doc)
	b.mu.Unlock()
	if lat > 0 {
		t := time.NewTimer(lat)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			err := Permanent(fmt.Errorf("wsbus: %s: caller budget exhausted mid-call: %w", service, ctx.Err()))
			obs.M().Counter("bus.errors").Inc()
			obs.M().Counter("bus.deadline_abandoned").Inc()
			span.Set("error", err.Error()).End(obsv.OutcomeFault)
			obs.M().Histogram("bus.latency_ms").ObserveDuration(span.Duration())
			return nil, err
		}
	}
	resp, err := b.safeCall(h, req)
	if err != nil {
		err = fmt.Errorf("wsbus: service %s: %w", service, err)
		obs.M().Counter("bus.errors").Inc()
		span.Set("error", err.Error()).End(obsv.OutcomeFault)
		obs.M().Histogram("bus.latency_ms").ObserveDuration(span.Duration())
		return nil, err
	}
	b.mu.Lock()
	b.successes++
	b.mu.Unlock()
	span.End(obsv.OutcomeOK)
	obs.M().Histogram("bus.latency_ms").ObserveDuration(span.Duration())
	return resp, nil
}

// safeCall runs a handler, converting panics into transient errors.
func (b *Bus) safeCall(h Handler, req Message) (resp Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			b.mu.Lock()
			b.panics++
			b.mu.Unlock()
			resp = nil
			err = Transient(fmt.Errorf("handler panicked: %v", r))
		}
	}()
	return h(req)
}

// Has reports whether a service is registered.
func (b *Bus) Has(service string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.services[service]
	return ok
}
