package wsbus

import (
	"fmt"
	"strconv"
	"sync"

	"wfsql/internal/rowset"
	"wfsql/internal/sqldb"
)

// OrderFromSupplierService is the paper's sample Web service: it takes an
// item type and a required quantity, "orders" the items from a supplier,
// and returns a confirmation string indicating success. Orders above the
// configured capacity are rejected, exercising the failure path.
type OrderFromSupplierService struct {
	mu       sync.Mutex
	Capacity int64 // per-call quantity limit; 0 means unlimited
	ordered  map[string]int64
}

// NewOrderFromSupplier creates the sample supplier service.
func NewOrderFromSupplier(capacity int64) *OrderFromSupplierService {
	return &OrderFromSupplierService{Capacity: capacity, ordered: map[string]int64{}}
}

// Handle implements the service operation. Request parts: ItemID,
// Quantity. Response part: OrderConfirmation.
func (s *OrderFromSupplierService) Handle(req Message) (Message, error) {
	item := req["ItemID"]
	if item == "" {
		return nil, fmt.Errorf("OrderFromSupplier: missing ItemID")
	}
	qty, err := strconv.ParseInt(req["Quantity"], 10, 64)
	if err != nil || qty <= 0 {
		return nil, fmt.Errorf("OrderFromSupplier: bad Quantity %q", req["Quantity"])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Capacity > 0 && qty > s.Capacity {
		return Message{"OrderConfirmation": "REJECTED:" + item + ":" + strconv.FormatInt(qty, 10)}, nil
	}
	s.ordered[item] += qty
	return Message{"OrderConfirmation": "CONFIRMED:" + item + ":" + strconv.FormatInt(qty, 10)}, nil
}

// Ordered returns the total quantity ordered for an item so far.
func (s *OrderFromSupplierService) Ordered(item string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ordered[item]
}

// RegisterSQLAdapter registers the *adapter technology* of the paper's
// Figure 1: a service that encapsulates SQL-specific functionality and
// masks data management operations as a Web service. The process logic
// calling it sees only a service; data management issues stay outside the
// choreography.
//
// Request parts:
//
//	statement — the SQL text to execute
//	p1..pN    — optional positional parameter values (bound as strings)
//
// Response parts:
//
//	rowsAffected — for DML
//	rowset       — serialized XML RowSet, for queries
//	rows         — row count, for queries
func RegisterSQLAdapter(b *Bus, name string, db *sqldb.DB) {
	b.Register(name, func(req Message) (Message, error) {
		stmt := req["statement"]
		if stmt == "" {
			return nil, fmt.Errorf("sql adapter: missing statement")
		}
		var params []sqldb.Value
		for i := 1; ; i++ {
			v, ok := req[fmt.Sprintf("p%d", i)]
			if !ok {
				break
			}
			params = append(params, sqldb.Str(v))
		}
		res, err := db.Exec(stmt, params...)
		if err != nil {
			return nil, err
		}
		if !res.IsQuery() {
			return Message{"rowsAffected": strconv.Itoa(res.RowsAffected)}, nil
		}
		rs, err := rowset.FromResult(res)
		if err != nil {
			return nil, err
		}
		return Message{
			"rowset": rs.String(),
			"rows":   strconv.Itoa(len(res.Rows)),
		}, nil
	})
}
