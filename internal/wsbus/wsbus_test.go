package wsbus

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"wfsql/internal/sqldb"
)

func TestRegisterInvoke(t *testing.T) {
	b := New()
	b.Register("echo", func(req Message) (Message, error) {
		return Message{"out": req["in"]}, nil
	})
	if !b.Has("echo") {
		t.Fatal("Has")
	}
	resp, err := b.Invoke("echo", Message{"in": "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if resp["out"] != "hi" {
		t.Fatalf("response: %v", resp)
	}
	if b.Calls() != 1 {
		t.Fatalf("calls: %d", b.Calls())
	}
}

func TestInvokeErrors(t *testing.T) {
	b := New()
	if _, err := b.Invoke("missing", nil); err == nil {
		t.Fatal("unknown service must error")
	}
	b.Register("fail", func(req Message) (Message, error) {
		return nil, fmt.Errorf("boom")
	})
	if _, err := b.Invoke("fail", nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error propagation: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	b := New()
	b.Register("fast", func(req Message) (Message, error) { return Message{}, nil })
	b.SetLatency(20 * time.Millisecond)
	start := time.Now()
	if _, err := b.Invoke("fast", nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("latency not applied")
	}
}

func TestOrderFromSupplier(t *testing.T) {
	svc := NewOrderFromSupplier(10)
	resp, err := svc.Handle(Message{"ItemID": "bolt", "Quantity": "7"})
	if err != nil {
		t.Fatal(err)
	}
	if resp["OrderConfirmation"] != "CONFIRMED:bolt:7" {
		t.Fatalf("confirmation: %v", resp)
	}
	if svc.Ordered("bolt") != 7 {
		t.Fatalf("ordered: %d", svc.Ordered("bolt"))
	}
	// Over capacity: rejected, not an error.
	resp, err = svc.Handle(Message{"ItemID": "bolt", "Quantity": "99"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp["OrderConfirmation"], "REJECTED:") {
		t.Fatalf("over-capacity: %v", resp)
	}
	if svc.Ordered("bolt") != 7 {
		t.Fatal("rejected order must not accumulate")
	}
	// Bad requests are faults.
	if _, err := svc.Handle(Message{"Quantity": "1"}); err == nil {
		t.Fatal("missing item must error")
	}
	if _, err := svc.Handle(Message{"ItemID": "x", "Quantity": "zero"}); err == nil {
		t.Fatal("bad quantity must error")
	}
	if _, err := svc.Handle(Message{"ItemID": "x", "Quantity": "-1"}); err == nil {
		t.Fatal("negative quantity must error")
	}
}

func TestSQLAdapterQueryAndDML(t *testing.T) {
	db := sqldb.Open("a")
	db.MustExec("CREATE TABLE t (x INTEGER, s VARCHAR)")
	b := New()
	RegisterSQLAdapter(b, "sql", db)

	resp, err := b.Invoke("sql", Message{
		"statement": "INSERT INTO t VALUES (?, ?)", "p1": "1", "p2": "one"})
	if err != nil {
		t.Fatal(err)
	}
	if resp["rowsAffected"] != "1" {
		t.Fatalf("dml response: %v", resp)
	}

	resp, err = b.Invoke("sql", Message{"statement": "SELECT x, s FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if resp["rows"] != "1" || !strings.Contains(resp["rowset"], "<s>one</s>") {
		t.Fatalf("query response: %v", resp)
	}

	if _, err := b.Invoke("sql", Message{}); err == nil {
		t.Fatal("missing statement must error")
	}
	if _, err := b.Invoke("sql", Message{"statement": "SELEC"}); err == nil {
		t.Fatal("bad SQL must error")
	}
}
