package wfsql

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfsql/internal/chaos"
	"wfsql/internal/journal"
)

// This file is the failover chaos matrix: the running example bursts
// multiple instances on each product stack, the primary is killed
// mid-burst at each of the journal protocol's crash points, and a warm
// standby — which has been tailing the WAL all along — performs the
// lease-fenced takeover and resumes the in-flight work on a rebuilt
// host. Convergence is asserted the same three ways as the PR 2 crash
// matrix (confirmations, supplier ledger, passive INSERT count), plus
// the fencing property: the dead primary's recorder refuses writes
// before and after the takeover.

// failoverClock is a frozen manual clock starting at the real present,
// so lease stamps written with the real clock interoperate and tests
// advance time instead of sleeping through TTLs.
type failoverClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFailoverClock() *failoverClock { return &failoverClock{t: time.Now()} }

func (c *failoverClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *failoverClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// repeatRows is the expected confirmation multiset for a burst: every
// instance appends the same per-item rows.
func repeatRows(rows []string, n int) []string {
	out := make([]string, 0, len(rows)*n)
	for i := 0; i < n; i++ {
		out = append(out, rows...)
	}
	sort.Strings(out)
	return out
}

// burstLedgerMatches checks the supplier's per-item totals for a burst
// of n instances against single-instance baseline rows.
func burstLedgerMatches(t *testing.T, env *Environment, baseline []string, n int) {
	t.Helper()
	for _, row := range baseline {
		parts := strings.SplitN(row, "|", 3)
		qty, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			t.Fatalf("baseline row %q: %v", row, err)
		}
		if got, want := env.Supplier.Ordered(parts[0]), qty*int64(n); got != want {
			t.Errorf("supplier ledger for %s = %d, want %d (duplicated or lost invoke across failover)",
				parts[0], got, want)
		}
	}
}

// failoverBursts maps each crash stack to its multi-instance burst.
func failoverBursts() map[string]func(env *Environment, n int) error {
	return map[string]func(env *Environment, n int) error{
		"BIS_Figure4": func(env *Environment, n int) error {
			_, err := env.RunFigure4BISParallel(ParallelConfig{Instances: n, Workers: 2})
			return err
		},
		"WF_Figure6": func(env *Environment, n int) error {
			_, err := env.RunFigure6WFParallel(ParallelConfig{Instances: n, Workers: 2})
			return err
		},
		"Oracle_Figure8": func(env *Environment, n int) error {
			_, err := env.RunFigure8OracleParallel(ParallelConfig{Instances: n, Workers: 2})
			return err
		},
	}
}

// TestFailoverChaosMatrix kills each product stack at every crash point
// mid-burst — once on a supplier invocation, once on a confirmation
// insert — and proves the standby's takeover converges to the
// fault-free burst with exactly-once visible effects and a fenced old
// primary.
func TestFailoverChaosMatrix(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	const burst = 4
	bursts := failoverBursts()
	for _, stack := range crashStacks() {
		stack := stack
		want := baselineRows(t, w, stack.baseline)
		items := len(want)
		if items < 3 {
			t.Fatalf("workload too small for a mid-loop crash: %d item types", items)
		}
		wantAll := repeatRows(want, burst)
		for _, point := range crashPoints {
			for _, target := range []struct{ label, activity string }{
				{"invoke", stack.invokeAct},
				{"sql", stack.sqlAct},
			} {
				point, target := point, target
				t.Run(stack.name+"/"+point.String()+"/"+target.label, func(t *testing.T) {
					clock := newFailoverClock()
					env := NewEnvironment(w)
					inserts := &chaos.SQLFaultPlan{Kinds: []string{"INSERT"}}
					chaos.InstallSQL(env.DB, inserts)
					defer chaos.InstallSQL(env.DB, nil)

					dir := t.TempDir()
					pri, err := env.StartPrimary(dir, "primary-a", time.Second)
					if err != nil {
						t.Fatalf("start primary: %v", err)
					}
					pri.Lease.SetClock(clock.Now)

					// The standby follows from the start (warm).
					ws := NewWarmStandby(dir, time.Second)
					ws.Lease.SetClock(clock.Now)
					if _, err := ws.CatchUp(); err != nil {
						t.Fatal(err)
					}

					// Kill mid-burst: the crash fires during the third
					// instance's loop (the first two instances' effects
					// already interleave in the shared WAL).
					plan := &chaos.CrashPlan{Point: point, Activity: target.activity, AtEffect: 2*items + 2}
					chaos.Crash(pri.Rec, plan)

					err = bursts[stack.name](env, burst)
					if !journal.IsCrash(err) {
						t.Fatalf("burst: want a crash error, got %v", err)
					}
					if !plan.Fired() {
						t.Fatal("crash plan never fired")
					}

					// The primary process is dead: its heartbeat stops and
					// the TTL lapses. Its own guard self-fences even before
					// the standby moves.
					clock.Advance(5 * time.Second)
					if err := pri.Rec.Deploy("zombie-before-takeover"); !journal.IsFenced(err) {
						t.Fatalf("dead primary append: err = %v, want ErrFenced", err)
					}

					// Warm takeover: catch up, promote, rebuild, recover.
					if _, err := ws.CatchUp(); err != nil {
						t.Fatal(err)
					}
					if n := len(ws.Standby.InFlight()); n != 1 {
						t.Fatalf("standby sees %d in-flight instances, want 1", n)
					}
					host, rec2, err := ws.Takeover(env, "standby-b", stack.recover)
					if err != nil {
						t.Fatalf("takeover: %v", err)
					}
					defer rec2.Close()

					if got := confirmationRows(t, host); !sameRows(got, wantAll) {
						t.Fatalf("failover confirmations diverge from fault-free burst:\n got %v\nwant %v", got, wantAll)
					}
					burstLedgerMatches(t, host, want, burst)
					if got, wantN := inserts.Seen(), burst*items; got != wantN {
						t.Fatalf("%d INSERT executions across burst+failover, want %d (memoized replay must not re-run SQL)", got, wantN)
					}
					if stack.useBus {
						if got := env.Bus.Attempts(); got != int64(burst*items) {
							t.Fatalf("%d supplier invocations dispatched, want %d (memoized replay must not re-invoke)", got, burst*items)
						}
					}
					if n := len(rec2.InFlight()); n != 0 {
						t.Fatalf("journal still holds %d in-flight instances after failover recovery", n)
					}

					// The old primary stays fenced after the takeover too —
					// epoch advance, not just expiry.
					if err := pri.Rec.Deploy("zombie-after-takeover"); !journal.IsFenced(err) {
						t.Fatalf("zombie append after takeover: err = %v, want ErrFenced", err)
					}
					if pri.Rec.FencedWrites() < 2 {
						t.Fatalf("FencedWrites = %d, want >= 2", pri.Rec.FencedWrites())
					}
					// The new primary is live.
					if err := rec2.Deploy("post-takeover"); err != nil {
						t.Fatalf("new primary append: %v", err)
					}
				})
			}
		}
	}
}

// TestFollowSurfacesTerminalError: a Follow loop that dies on a CatchUp
// error must not vanish silently — the standby would quietly go stale.
// The terminal error is retained for LastError and delivered to the
// OnFollowError callback, mirroring a heartbeat's onLost.
func TestFollowSurfacesTerminalError(t *testing.T) {
	dir := t.TempDir()
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	ws := NewWarmStandby(dir, time.Second)
	wantErr := errors.New("replica apply wedged")
	ws.Standby.OnSQLEffect(func(journal.SQLEffectRecord) error { return wantErr })
	notified := make(chan error, 1)
	ws.OnFollowError = func(err error) { notified <- err }

	stop := ws.Follow(time.Millisecond)
	defer stop()
	// A SQL effect lands in the WAL; the consumer refuses it, so the
	// next poll fails and the loop must terminate loudly.
	if err := rec.SQLEffect(journal.SQLEffectRecord{Seq: 1, Session: 1, Kind: "INSERT", SQL: "INSERT INTO t VALUES (1)"}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-notified:
		if !errors.Is(err, wantErr) {
			t.Fatalf("OnFollowError got %v, want %v", err, wantErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Follow died without invoking OnFollowError")
	}
	if err := ws.LastError(); !errors.Is(err, wantErr) {
		t.Fatalf("LastError = %v, want %v", err, wantErr)
	}
}

// TestFollowBacksOffWhenStalled: an idle follower must not poll a quiet
// WAL at the full base rate — the loop backs off exponentially (capped)
// while nothing arrives, and snaps back to prompt absorption the moment
// the primary writes again.
func TestFollowBacksOffWhenStalled(t *testing.T) {
	dir := t.TempDir()
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	ws := NewWarmStandby(dir, time.Second)
	// The tailer itself is single-goroutine, so absorption is observed
	// through the standby's effect hook, not Tailer counters.
	var absorbed atomic.Int64
	ws.Standby.OnSQLEffect(func(journal.SQLEffectRecord) error {
		absorbed.Add(1)
		return nil
	})
	base := 2 * time.Millisecond
	stop := ws.Follow(base)
	defer stop()

	// Active phase: records arrive and are absorbed.
	effect := func(seq int64) error {
		return rec.SQLEffect(journal.SQLEffectRecord{
			Seq: seq, Session: 1, Kind: "INSERT",
			SQL: fmt.Sprintf("INSERT INTO t VALUES (%d)", seq),
		})
	}
	for i := int64(1); i <= 5; i++ {
		if err := effect(i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for absorbed.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("follower absorbed %d records, want 5", absorbed.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Stall phase: nothing arrives. A fixed-rate loop would poll
	// ~stall/base times; the backoff ramps to the cap, so the count
	// must come in far below that.
	p0 := ws.Polls()
	stall := 160 * base
	time.Sleep(stall)
	stalled := ws.Polls() - p0
	fixedRate := int64(stall / base)
	if stalled >= fixedRate/2 {
		t.Fatalf("stalled follower polled %d times in %v (fixed rate would be ~%d) — backoff is not engaging", stalled, stall, fixedRate)
	}
	if stalled == 0 {
		t.Fatal("stalled follower stopped polling entirely")
	}

	// Wake phase: a new record is absorbed within a few capped
	// intervals — the backoff bounds staleness, it does not park the
	// follower forever.
	if err := effect(6); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for absorbed.Load() < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up after the stall (absorbed %d)", absorbed.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFailoverSQLReplicaOffload: the standby's read replica follows the
// primary's database through the WAL's SQL-effect stream — reporting
// queries read the replica, writes there are refused — and converges to
// the primary byte-for-byte; after takeover it opens for writes.
func TestFailoverSQLReplicaOffload(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	env := NewEnvironment(w)
	dir := t.TempDir()
	clock := newFailoverClock()
	pri, err := env.StartPrimary(dir, "primary-a", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pri.Lease.SetClock(clock.Now)

	ws := NewWarmStandby(dir, time.Second)
	ws.Lease.SetClock(clock.Now)
	if err := ws.AttachSQLReplica(env, "replica"); err != nil {
		t.Fatal(err)
	}

	if _, err := env.RunFigure4BISParallel(ParallelConfig{Instances: 3, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if err := ws.SQL.Complete(ws.Standby); err != nil {
		t.Fatalf("stream completeness: %v", err)
	}
	if pd, rd := env.DB.Dump(), ws.SQL.DB().Dump(); pd != rd {
		t.Fatalf("replica diverged:\nprimary:\n%s\nreplica:\n%s", pd, rd)
	}

	// Reporting offload: reads serve, writes are refused.
	res, err := ws.SQL.DB().Exec("SELECT COUNT(*) FROM OrderConfirmations")
	if err != nil {
		t.Fatalf("replica read: %v", err)
	}
	if n, _ := res.Rows[0][0].AsInt(); int(n) != 3*env.ApprovedItemTypes() {
		t.Fatalf("replica sees %d confirmations, want %d", n, 3*env.ApprovedItemTypes())
	}
	if _, err := ws.SQL.DB().Exec("DELETE FROM OrderConfirmations"); err == nil {
		t.Fatal("replica accepted a direct write before takeover")
	}

	// Primary dies; takeover opens the replica for writes.
	pri.Pause()
	clock.Advance(5 * time.Second)
	if _, _, err := ws.Takeover(env, "standby-b", nil); err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if _, err := ws.SQL.DB().Exec("DELETE FROM OrderConfirmations"); err != nil {
		t.Fatalf("replica write after takeover: %v", err)
	}
}
