package wfsql

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wfsql/internal/journal"
	"wfsql/internal/replica"
)

// This file is the warm-standby failover facade. A Primary is an
// environment whose journal recorder is lease-fenced and whose database
// change stream rides the WAL; a WarmStandby tails that WAL from
// another "host" (the same machine here — the shared directory models
// the replicated log transport), replaying lifecycle records into a
// hot materialized state and SQL effects into a read replica. On
// primary death the standby performs the lease-fenced takeover and a
// rebuilt environment resumes the in-flight instances exactly-once —
// the crash-recovery guarantees of PR 2, now with a warm follower
// instead of a cold restart.

// Primary bundles a running environment with its lease-fenced journal.
type Primary struct {
	Env   *Environment
	Rec   *journal.Recorder
	Lease *replica.Lease
	State replica.LeaseState

	stopHeartbeat func()
}

// StartPrimary turns env into a lease-fenced primary: it opens the
// journal in dir, acquires the fencing lease as holder (ttl <= 0 uses
// replica.DefaultTTL), installs the append guard, attaches the journal
// to both workflow hosts, and wires the database's change stream into
// the WAL so SQL state replicates over the same channel as workflow
// lifecycle. The caller keeps the lease alive with Heartbeat (or
// manual Lease.Renew with an injected clock in tests).
func (env *Environment) StartPrimary(dir, holder string, ttl time.Duration) (*Primary, error) {
	rec, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	lease := replica.OpenLease(dir, ttl)
	st, err := replica.AttachPrimary(rec, lease, holder)
	if err != nil {
		rec.Close()
		return nil, err
	}
	if env.obs != nil {
		rec.SetObservability(env.obs)
	}
	env.Engine.AttachJournal(rec)
	env.Runtime.AttachJournal(rec)
	replica.CaptureSQL(env.DB, rec)
	return &Primary{Env: env, Rec: rec, Lease: lease, State: st}, nil
}

// Heartbeat starts background lease renewal at the given interval
// (choose well under the TTL). Idempotent per Primary; Pause stops it.
func (p *Primary) Heartbeat(interval time.Duration) {
	if p.stopHeartbeat != nil {
		return
	}
	p.stopHeartbeat = p.Lease.StartHeartbeat(p.State.Holder, p.State.Epoch, interval, nil)
}

// Pause stops lease renewal without closing anything — the facade's
// model of a stalled or dying primary process. Once the TTL lapses the
// standby may take over, and this primary's own guard self-fences.
func (p *Primary) Pause() {
	if p.stopHeartbeat != nil {
		p.stopHeartbeat()
		p.stopHeartbeat = nil
	}
}

// Close stops the heartbeat, detaches SQL capture, and closes the
// recorder (clean shutdown; the lease simply expires).
func (p *Primary) Close() error {
	p.Pause()
	replica.CaptureSQL(p.Env.DB, nil)
	return p.Rec.Close()
}

// WarmStandby follows a primary's journal directory, ready to take
// over. It wraps the replica-layer standby with the facade-level
// takeover sequence (promote, rebuild hosts, recover in-flight work).
type WarmStandby struct {
	Standby *replica.Standby
	Lease   *replica.Lease
	SQL     *replica.SQLReplica

	// HeartbeatEvery, when non-zero, makes Takeover start background
	// lease renewal at this interval immediately after promotion —
	// before the recovery closure runs, which can take longer than the
	// TTL. Deterministic tests leave it zero and drive the clock.
	HeartbeatEvery time.Duration

	// OnFollowError, when non-nil, is invoked once with the CatchUp
	// error that terminated a Follow loop (mirroring StartHeartbeat's
	// onLost). Set it before calling Follow.
	OnFollowError func(error)

	stopHB func()
	polls  int64 // atomic: CatchUp polls executed by Follow loops

	mu      sync.Mutex
	lastErr error
}

// NewWarmStandby builds a standby on the primary's journal directory.
// ttl must match the primary's lease TTL (they share the lease file, so
// in practice: same configuration).
func NewWarmStandby(dir string, ttl time.Duration) *WarmStandby {
	lease := replica.OpenLease(dir, ttl)
	return &WarmStandby{Standby: replica.NewStandby(dir, lease), Lease: lease}
}

// AttachSQLReplica bootstraps a read replica of the primary's database
// from a consistent dump and subscribes it to the tailed SQL-effect
// stream: every CatchUp advances it. Reporting sessions read
// ws.SQL.DB(); direct writes there are refused until takeover.
func (ws *WarmStandby) AttachSQLReplica(primary *Environment, name string) error {
	rep, err := replica.BootstrapSQLReplica(primary.DB, name)
	if err != nil {
		return err
	}
	ws.SQL = rep
	ws.Standby.OnSQLEffect(rep.ApplyEffect)
	return nil
}

// CatchUp drains the primary's WAL tail (lifecycle fold + SQL replica
// apply), returning records absorbed.
func (ws *WarmStandby) CatchUp() (int, error) { return ws.Standby.CatchUp() }

// followBackoffCap bounds Follow's idle backoff at this multiple of the
// base interval: deep enough to stop a parked standby from hammering a
// quiet WAL, shallow enough that the first poll after a stall is never
// more than ~8 intervals late.
const followBackoffCap = 8

// Follow polls CatchUp on a background goroutine until the returned
// stop function is called or a poll fails. The poll cadence adapts: a
// poll that absorbs records is followed after the base interval, while
// idle polls — a standby parked at the tip (or a torn tail) of a quiet
// primary — back off exponentially up to followBackoffCap× the base,
// resetting to the base the moment progress resumes. A poll error ends
// the loop — a standby cannot keep following a stream it can no longer
// read — but never silently: the error is retained for LastError and
// handed to OnFollowError, so the operator learns the standby went
// stale instead of discovering it at takeover time. stop blocks until
// the goroutine has exited, so after it returns the caller may use
// CatchUp directly — the tailer is single-goroutine.
func (ws *WarmStandby) Follow(interval time.Duration) (stop func()) {
	ws.mu.Lock()
	ws.lastErr = nil
	ws.mu.Unlock()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		wait := interval
		t := time.NewTimer(wait)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				n, err := ws.CatchUp()
				atomic.AddInt64(&ws.polls, 1)
				if err != nil {
					ws.mu.Lock()
					ws.lastErr = err
					ws.mu.Unlock()
					if ws.OnFollowError != nil {
						ws.OnFollowError(err)
					}
					return
				}
				if n > 0 {
					wait = interval
				} else if wait < followBackoffCap*interval {
					wait *= 2
					if wait > followBackoffCap*interval {
						wait = followBackoffCap * interval
					}
				}
				t.Reset(wait)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// Polls returns the number of CatchUp polls Follow loops have executed
// over this standby's lifetime — the observable the backoff test (and a
// curious operator) reads to verify an idle follower really slows down.
func (ws *WarmStandby) Polls() int64 { return atomic.LoadInt64(&ws.polls) }

// LastError returns the error that terminated the most recent Follow
// loop, nil while it is healthy (or was stopped cleanly). It is the
// poll-loop analogue of a heartbeat's onLost signal.
func (ws *WarmStandby) LastError() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.lastErr
}

// Heartbeat starts background renewal of the lease this standby holds
// after a successful Takeover, at the given interval (choose well under
// the TTL — the promoted recorder self-fences once its lease expires,
// exactly like the old primary's did). Prefer setting HeartbeatEvery
// before Takeover, which closes the renewal gap across the recovery
// closure too.
func (ws *WarmStandby) Heartbeat(interval time.Duration) (stop func(), err error) {
	st, err := ws.Lease.Read()
	if err != nil {
		return nil, err
	}
	return ws.Lease.StartHeartbeat(st.Holder, st.Epoch, interval, nil), nil
}

// StopHeartbeat stops the renewal loop Takeover started via
// HeartbeatEvery (no-op when none is running). The lease then simply
// expires, as on any primary death.
func (ws *WarmStandby) StopHeartbeat() {
	if ws.stopHB != nil {
		ws.stopHB()
		ws.stopHB = nil
	}
}

// Takeover is the full facade-level failover: lease-fenced promotion
// (refused with replica.ErrLeaseHeld while the primary's heartbeat is
// live), host rebuild via Environment.Rebuild, journal attachment, and
// stack-specific recovery of the in-flight instances via recover —
// the same closure shape the crash-recovery tests use (deploy the
// process on the rebuilt host, then engine.Recover / Runtime.Resume).
// If a SQL replica is attached, its orphaned transactions are aborted
// and it opens for writes (the promoted side's reporting store).
//
// On success the returned environment is the new primary's, with the
// promoted recorder attached to its hosts and the database change
// stream re-captured into it.
func (ws *WarmStandby) Takeover(env *Environment, holder string, recover func(host *Environment, rec *journal.Recorder) error) (*Environment, *journal.Recorder, error) {
	rec, err := ws.Standby.Promote(holder)
	if err != nil {
		return nil, nil, err
	}
	if ws.HeartbeatEvery > 0 {
		ws.stopHB = ws.Lease.StartHeartbeat(holder, rec.Epoch(), ws.HeartbeatEvery, nil)
	}
	host := env.Rebuild()
	if host.obs != nil {
		rec.SetObservability(host.obs)
	}
	host.Engine.AttachJournal(rec)
	host.Runtime.AttachJournal(rec)
	if ws.SQL != nil {
		ws.SQL.Promote()
	}
	replica.CaptureSQL(host.DB, rec)
	if recover != nil {
		if err := recover(host, rec); err != nil {
			return nil, nil, fmt.Errorf("wfsql: takeover recovery: %w", err)
		}
	}
	return host, rec, nil
}
