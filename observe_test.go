package wfsql

import (
	"bytes"
	"encoding/json"
	"testing"

	"wfsql/internal/chaos"
	"wfsql/internal/engine"
	"wfsql/internal/journal"
	"wfsql/internal/obsv"
)

// This file proves the observability layer end to end on the paper's
// running example: every Figure-4/6/8 run emits one complete span tree —
// instance → activity → SQL statement / bus call — into both the
// in-memory Collector and the JSONL exporter, the metrics registry's
// counters agree with the trace, and the retry / journal-replay counters
// match what the chaos and crash planners actually injected.

// spanIndex maps collected span ids to spans.
func spanIndex(spans []*obsv.Span) map[uint64]*obsv.Span {
	idx := make(map[uint64]*obsv.Span, len(spans))
	for _, s := range spans {
		idx[s.ID] = s
	}
	return idx
}

// assertTreeWellFormed checks that every non-root span's parent was also
// collected (no orphaned spans) and that following Parent links reaches a
// KindInstance root.
func assertTreeWellFormed(t *testing.T, spans []*obsv.Span) {
	t.Helper()
	idx := spanIndex(spans)
	for _, s := range spans {
		if s.Parent == 0 {
			if s.Kind != obsv.KindInstance {
				t.Errorf("root span %d (%s %q) is not an instance span", s.ID, s.Kind, s.Name)
			}
			continue
		}
		cur, hops := s, 0
		for cur.Parent != 0 {
			p, ok := idx[cur.Parent]
			if !ok {
				t.Fatalf("span %d (%s %q) has parent %d that was never exported", cur.ID, cur.Kind, cur.Name, cur.Parent)
			}
			cur = p
			if hops++; hops > len(spans) {
				t.Fatal("parent chain cycle")
			}
		}
		if cur.Kind != obsv.KindInstance {
			t.Errorf("span %d (%s %q) roots at %s %q, want an instance span", s.ID, s.Kind, s.Name, cur.Kind, cur.Name)
		}
	}
}

// TestObservabilityFigureTraces runs each product stack's figure with one
// observability bundle attached and checks the span tree (shape, stack
// label, outcomes), the JSONL export, and the trace/metrics agreement.
func TestObservabilityFigureTraces(t *testing.T) {
	w := Workload{Orders: 12, Items: 3, ApprovalPercent: 100, Seed: 5}
	stacks := []struct {
		name    string
		stack   string
		wantBus bool
		instCtr string // counter that must read 1
		actCtr  string // counter that must equal the activity-span count
		run     func(env *Environment) error
	}{
		{"BIS_Figure4", "BIS", true, "engine.instances", "engine.activities",
			func(env *Environment) error { return env.RunFigure4BIS() }},
		{"WF_Figure6", "WF", false, "wf.instances", "wf.activities",
			func(env *Environment) error { return env.RunFigure6WF() }},
		{"Oracle_Figure8", "Oracle", true, "engine.instances", "engine.activities",
			func(env *Environment) error { return env.RunFigure8Oracle() }},
	}
	for _, st := range stacks {
		st := st
		t.Run(st.name, func(t *testing.T) {
			env := NewEnvironment(w)
			o := env.EnableObservability(nil)
			col := obsv.NewCollector()
			o.T().AddSink(col)
			var jsonl bytes.Buffer
			jw := obsv.NewJSONLWriter(&jsonl)
			o.T().AddSink(jw)

			if err := st.run(env); err != nil {
				t.Fatalf("run: %v", err)
			}
			if jw.Err() != nil {
				t.Fatalf("jsonl writer: %v", jw.Err())
			}
			// Detach before asserting: the assertions below query the DB
			// themselves and must not add spans to the captured trace.
			env.DisableObservability()

			spans := col.Spans()
			assertTreeWellFormed(t, spans)

			// Exactly one instance span, labeled with the product stack,
			// finished OK.
			insts := col.ByKind(obsv.KindInstance)
			if len(insts) != 1 {
				t.Fatalf("%d instance spans, want 1:\n%s", len(insts), col.TreeString())
			}
			root := insts[0]
			if root.Stack != st.stack {
				t.Errorf("instance span stack = %q, want %q", root.Stack, st.stack)
			}
			if root.Outcome != obsv.OutcomeOK {
				t.Errorf("instance span outcome = %q, want %q", root.Outcome, obsv.OutcomeOK)
			}
			if root.EndTime.IsZero() {
				t.Error("instance span never ended")
			}

			// Activity spans exist, inherit the stack label, and agree
			// with the activity counter.
			acts := col.ByKind(obsv.KindActivity)
			if len(acts) == 0 {
				t.Fatal("no activity spans")
			}
			for _, a := range acts {
				if a.Stack != st.stack {
					t.Errorf("activity %q stack = %q, want %q", a.Name, a.Stack, st.stack)
				}
			}
			if got := o.M().Counter(st.actCtr).Value(); got != int64(len(acts)) {
				t.Errorf("%s = %d, want %d (one per activity span)", st.actCtr, got, len(acts))
			}
			if got := o.M().Counter(st.instCtr).Value(); got != 1 {
				t.Errorf("%s = %d, want 1", st.instCtr, got)
			}

			// Every SQL statement is traced and parented under an
			// activity; the per-statement counter agrees.
			sqls := col.ByKind(obsv.KindSQL)
			if len(sqls) == 0 {
				t.Fatal("no SQL spans")
			}
			idx := spanIndex(spans)
			for _, s := range sqls {
				p, ok := idx[s.Parent]
				if !ok || (p.Kind != obsv.KindActivity && p.Kind != obsv.KindInstance) {
					t.Errorf("SQL span %q parent %d is not an activity/instance span", s.Name, s.Parent)
				}
				if s.Attrs["db"] != DataSourceName {
					t.Errorf("SQL span %q db attr = %q, want %q", s.Name, s.Attrs["db"], DataSourceName)
				}
			}
			if got := o.M().Counter("sqldb.stmt").Value(); got != int64(len(sqls)) {
				t.Errorf("sqldb.stmt = %d, want %d (one per SQL span)", got, len(sqls))
			}

			// BPEL stacks route supplier invocations over the bus: one
			// bus span per approved item type, each under an activity.
			bus := col.ByKind(obsv.KindBus)
			if st.wantBus {
				if got, want := len(bus), env.ApprovedItemTypes(); got != want {
					t.Errorf("%d bus spans, want %d (one per approved item type)", got, want)
				}
				for _, b := range bus {
					if p, ok := idx[b.Parent]; !ok || p.Kind != obsv.KindActivity {
						t.Errorf("bus span %q not parented under an activity", b.Name)
					}
				}
			}

			// The JSONL export carries the same spans, one valid JSON
			// object per line.
			lines := bytes.Split(bytes.TrimSpace(jsonl.Bytes()), []byte("\n"))
			if len(lines) != len(spans) {
				t.Fatalf("JSONL has %d lines, collector has %d spans", len(lines), len(spans))
			}
			names := map[string]int{}
			for _, ln := range lines {
				var got struct {
					ID      uint64 `json:"id"`
					Kind    string `json:"kind"`
					Name    string `json:"name"`
					Outcome string `json:"outcome"`
				}
				if err := json.Unmarshal(ln, &got); err != nil {
					t.Fatalf("bad JSONL line %q: %v", ln, err)
				}
				if got.ID == 0 || got.Kind == "" || got.Outcome == "" {
					t.Fatalf("JSONL line missing fields: %s", ln)
				}
				names[got.Name]++
			}
			for _, a := range acts {
				if names[a.Name] == 0 {
					t.Errorf("activity %q missing from JSONL trace", a.Name)
				}
			}

			// Metrics snapshot agrees with the trace on row movement.
			if got := o.M().Counter("sqldb.rows_returned").Value(); got == 0 {
				t.Error("sqldb.rows_returned = 0, want > 0 (the figures all query Orders)")
			}
		})
	}
}

// TestObservabilityRetryCountersMatchChaos injects the standard transient
// fault window into the supplier and checks the retry counters account
// for exactly the injected faults: every failure was retried with a
// backoff, nothing was abandoned, and the instance completed.
func TestObservabilityRetryCountersMatchChaos(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	env := NewEnvironment(w)
	o := env.EnableObservability(nil)
	col := obsv.NewCollector()
	o.T().AddSink(col)

	plan := chaosWindow()
	if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
		t.Fatal(err)
	}
	if err := env.RunFigure4BISResilient(ResilienceConfig{Invoke: quickPolicy(8)}); err != nil {
		t.Fatalf("resilient run under chaos: %v", err)
	}
	injected := int64(plan.Injected())
	if injected == 0 {
		t.Fatal("fault plan injected nothing — test proved nothing")
	}

	m := o.M()
	attempts := m.Counter("retry.attempts").Value()
	successes := m.Counter("retry.successes").Value()
	failures := m.Counter("retry.failures").Value()
	backoffs := m.Counter("retry.backoffs").Value()

	if failures != injected {
		t.Errorf("retry.failures = %d, want %d (one per injected fault)", failures, injected)
	}
	if backoffs != injected {
		t.Errorf("retry.backoffs = %d, want %d (every failure retried after a backoff)", backoffs, injected)
	}
	if attempts != successes+failures {
		t.Errorf("retry.attempts = %d, want successes+failures = %d", attempts, successes+failures)
	}
	if want := int64(env.ApprovedItemTypes()); successes != want {
		t.Errorf("retry.successes = %d, want %d (one per approved item type)", successes, want)
	}
	if got := m.Counter("retry.giveups").Value(); got != 0 {
		t.Errorf("retry.giveups = %d, want 0 (transient window must heal)", got)
	}
	if got := m.Histogram("retry.backoff_ms").Count(); got != backoffs {
		t.Errorf("retry.backoff_ms histogram count = %d, want %d", got, backoffs)
	}
	if got := m.Counter("engine.instances.completed").Value(); got != 1 {
		t.Errorf("engine.instances.completed = %d, want 1", got)
	}

	// Each retry attempt is one bus dispatch, so the bus span count must
	// equal the attempt count, with exactly the injected faults faulted.
	busSpans := col.ByKind(obsv.KindBus)
	if int64(len(busSpans)) != attempts {
		t.Errorf("%d bus spans, want %d (one per retry attempt)", len(busSpans), attempts)
	}
	var faulted int64
	for _, b := range busSpans {
		if b.Outcome == obsv.OutcomeFault {
			faulted++
		}
	}
	// Panic-injected faults unwind past the bus span's normal return
	// path, so at minimum the fail-fast and slow-fail injections show up
	// as faulted bus spans; never more than the injected total.
	if faulted > injected {
		t.Errorf("%d faulted bus spans, want at most %d injected", faulted, injected)
	}
	if faulted == 0 {
		t.Error("no faulted bus spans despite injected faults")
	}
}

// TestObservabilityJournalReplayCounters crashes a journaled BIS run
// mid-loop, recovers it on a rebuilt host sharing the same observability
// bundle, and checks the crash/replay accounting: one crashed instance,
// one completed instance, and journal.replays equal to the replayed
// activity spans in the trace.
func TestObservabilityJournalReplayCounters(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	env := NewEnvironment(w)
	o := env.EnableObservability(nil)
	col := obsv.NewCollector()
	o.T().AddSink(col)

	dir := t.TempDir()
	rec := openJournal(t, dir)
	plan := &chaos.CrashPlan{Point: journal.CrashAfterEffect, Activity: "invoke", AtEffect: 2}
	chaos.Crash(rec, plan)
	env.Engine.AttachJournal(rec)

	err := env.RunFigure4BISResilient(ResilienceConfig{})
	if !journal.IsCrash(err) {
		t.Fatalf("crash run: want a crash error, got %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	m := o.M()
	if got := m.Counter("engine.instances.crashed").Value(); got != 1 {
		t.Fatalf("engine.instances.crashed = %d, want 1", got)
	}
	insts := col.ByKind(obsv.KindInstance)
	if len(insts) != 1 || insts[0].Outcome != obsv.OutcomeCrashed {
		t.Fatalf("crash run instance spans = %v, want one with outcome %q", insts, obsv.OutcomeCrashed)
	}

	// Recover on a rebuilt host: the Rebuild keeps the same bundle, so
	// counters and spans accumulate across the crash/recover boundary.
	rec2 := openJournal(t, dir)
	defer rec2.Close()
	inflight := rec2.InFlight()
	if len(inflight) != 1 {
		t.Fatalf("%d in-flight instances, want 1", len(inflight))
	}
	memos := inflight[0].MemoCount()
	if memos == 0 {
		t.Fatal("crashed instance journaled no effects — nothing to replay")
	}

	host := env.Rebuild()
	host.Engine.AttachJournal(rec2)
	d, err := host.Engine.Deploy(host.BuildFigure4BISResilient(ResilienceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Recover(rec2, map[string]*engine.Deployment{"Figure4": d}); err != nil {
		t.Fatalf("recovery: %v", err)
	}

	replays := m.Counter("journal.replays").Value()
	if replays != int64(memos) {
		t.Errorf("journal.replays = %d, want %d (every memoized effect replayed once)", replays, memos)
	}
	var replayed int
	for _, s := range col.ByKind(obsv.KindActivity) {
		if s.Outcome == obsv.OutcomeReplayed {
			replayed++
		}
	}
	if int64(replayed) != replays {
		t.Errorf("%d activity spans carry outcome %q, want %d (one per journal replay)",
			replayed, obsv.OutcomeReplayed, replays)
	}
	if got := m.Counter("engine.instances.completed").Value(); got != 1 {
		t.Errorf("engine.instances.completed = %d, want 1 after recovery", got)
	}
	insts = col.ByKind(obsv.KindInstance)
	if len(insts) != 2 {
		t.Fatalf("%d instance spans after recovery, want 2 (crashed + recovered)", len(insts))
	}
	var okInst int
	for _, s := range insts {
		if s.Outcome == obsv.OutcomeOK {
			okInst++
		}
	}
	if okInst != 1 {
		t.Errorf("%d instance spans ended OK, want exactly 1 (the recovered run)", okInst)
	}
}
