package wfsql

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wfsql/internal/admit"
	"wfsql/internal/journal"
	"wfsql/internal/resilience"
	"wfsql/internal/sched"
)

// This file is the overload-protection facade: it runs N instances of
// the paper's running example through a bounded admission queue
// (internal/admit) onto a streaming worker pool (sched.Pool), with
// per-instance deadline budgets propagated down to activity and SQL
// statement boundaries, an optional AIMD concurrency limiter, and a
// brown-out controller that degrades gracefully under sustained
// pressure: deferrable instances are shed first, the journal sync
// policy relaxes always→critical, and every shed instance lands in the
// dead-letter log with a SHED reason for later requeue.

// OverloadConfig parameterizes an overload-protected multi-instance run.
type OverloadConfig struct {
	// Instances is the number of workflow instances to submit (min 1).
	Instances int
	// Workers bounds the number of instances in flight at once (min 1).
	Workers int
	// QueueBound caps the admission queue (default 2*Workers).
	QueueBound int
	// Policy is the full-queue admission policy (Block, Shed,
	// TimeoutWait).
	Policy admit.Policy
	// Wait bounds TimeoutWait's patience.
	Wait time.Duration
	// Budget, when > 0, is each instance's execution deadline measured
	// from submission. Instances whose budget expires in the queue are
	// shed without starting; instances already running are cancelled at
	// the next activity / SQL statement boundary.
	Budget time.Duration
	// AIMDTarget, when > 0, enables the adaptive concurrency limiter
	// with this p99 latency objective (bounds [1, Workers]).
	AIMDTarget time.Duration
	// AIMDWindow is the limiter's adaptation window (samples per round).
	AIMDWindow int
	// BrownoutHigh, when > 0, enables the brown-out controller at this
	// queue-depth watermark.
	BrownoutHigh int
	// BrownoutWindow is how long depth must stay at the watermark
	// before degrading.
	BrownoutWindow time.Duration
	// Pace, when > 0, spaces submissions by this interval — an
	// open-loop arrival process offering 1/Pace instances per second
	// regardless of completion rate (the load shape that distinguishes
	// goodput collapse from graceful shedding). Zero submits the whole
	// burst as fast as admission allows.
	Pace time.Duration
	// DeferrableEvery, when > 0, marks every Nth submitted instance
	// Deferrable (modelling warm-up / data-setup work): under brown-out
	// those are shed first while Normal work keeps flowing.
	DeferrableEvery int
	// Resilience applies the usual reliability policies to every
	// instance.
	Resilience ResilienceConfig
}

func (c OverloadConfig) normalized() OverloadConfig {
	if c.Instances < 1 {
		c.Instances = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueBound < 1 {
		c.QueueBound = 2 * c.Workers
	}
	return c
}

// classFor assigns the priority class of the i-th submitted instance.
func (c OverloadConfig) classFor(i int) admit.Class {
	if c.DeferrableEvery > 0 && i%c.DeferrableEvery == c.DeferrableEvery-1 {
		return admit.Deferrable
	}
	return admit.Normal
}

// newOverloadPool assembles a streaming pool from the config, wiring
// shed instances into the given dead-letter log (Reason "SHED") and the
// brown-out controller into the engine journal's sync policy.
func (env *Environment) newOverloadPool(cfg OverloadConfig, stack string, letters *resilience.DeadLetterLog) *sched.Pool {
	pc := sched.PoolConfig{
		Workers:    cfg.Workers,
		QueueBound: cfg.QueueBound,
		Policy:     cfg.Policy,
		Wait:       cfg.Wait,
		JobBudget:  cfg.Budget,
		Obs:        env.obs,
	}
	if cfg.AIMDTarget > 0 {
		pc.AIMD = admit.AIMDConfig{
			Min:    1,
			Max:    cfg.Workers,
			Target: cfg.AIMDTarget,
			Window: cfg.AIMDWindow,
		}
	}
	if cfg.BrownoutHigh > 0 {
		pc.Brownout = admit.BrownoutConfig{
			High:   cfg.BrownoutHigh,
			Window: cfg.BrownoutWindow,
		}
	}
	if letters != nil {
		pc.OnShed = func(name, stack string, class admit.Class, reason string) {
			letters.Add(resilience.DeadLetter{
				Activity: "Admission",
				Target:   stack,
				Key:      name,
				Reason:   resilience.ReasonShed,
				LastErr:  fmt.Sprintf("admission shed: %s (class %s)", reason, class),
			})
		}
	}
	p := sched.NewPool(pc)

	// Graceful degradation of durability cost: while the brown-out is
	// active, a journal running in SyncAlways relaxes to SyncCritical
	// (commit-critical records still sync; chatty ones batch). The
	// previous policy is restored when pressure subsides.
	if rec := env.Engine.Journal(); rec != nil && p.Brownout() != nil {
		var mu sync.Mutex
		var saved *journal.SyncPolicy
		p.Brownout().OnChange(func(active bool) {
			mu.Lock()
			defer mu.Unlock()
			if active {
				cur := rec.SyncPolicy()
				if cur.Mode == journal.SyncAlways {
					saved = &cur
					rec.SetSyncPolicy(journal.SyncPolicy{Mode: journal.SyncCritical, BatchSize: cur.BatchSize})
				}
			} else if saved != nil {
				rec.SetSyncPolicy(*saved)
				saved = nil
			}
		})
	}
	return p
}

// RunFigure4BISOverload deploys the Figure 4 BIS process once and pushes
// cfg.Instances instances through the overload-protected pool. The
// returned report accounts every submitted instance exactly once:
// Completed + Failed + Shed == Submitted. The error is the first
// non-shed instance failure (sheds are an expected overload outcome,
// recorded in the report and the dead-letter log, not an error).
func (env *Environment) RunFigure4BISOverload(cfg OverloadConfig) (sched.PoolReport, error) {
	cfg = cfg.normalized()
	d, err := env.Engine.Deploy(env.BuildFigure4BISResilient(cfg.Resilience))
	if err != nil {
		return sched.PoolReport{}, err
	}
	pool := env.newOverloadPool(cfg, "BIS", env.Engine.DeadLetters)
	for i := 0; i < cfg.Instances; i++ {
		pool.Submit(context.Background(), sched.CtxJob{
			Stack: "BIS",
			Name:  fmt.Sprintf("Figure4_BIS#%d", i),
			Class: cfg.classFor(i),
			Run: func(ctx context.Context) error {
				_, err := d.RunCtx(ctx, nil)
				return err
			},
		})
		if cfg.Pace > 0 {
			time.Sleep(cfg.Pace)
		}
	}
	rep := pool.Drain()
	return rep, firstRunError(rep)
}

// RunFigure6WFOverload pushes cfg.Instances instances of the Figure 6 WF
// workflow through the overload-protected pool; shed instances land in
// the WF runtime's dead-letter log.
func (env *Environment) RunFigure6WFOverload(cfg OverloadConfig) (sched.PoolReport, error) {
	cfg = cfg.normalized()
	root := env.BuildFigure6WFResilient(cfg.Resilience)
	pool := env.newOverloadPool(cfg, "WF", env.Runtime.DeadLetters)
	for i := 0; i < cfg.Instances; i++ {
		pool.Submit(context.Background(), sched.CtxJob{
			Stack: "WF",
			Name:  fmt.Sprintf("Figure6_WF#%d", i),
			Class: cfg.classFor(i),
			Run: func(ctx context.Context) error {
				_, err := env.Runtime.RunCtx(ctx, root, map[string]any{"Index": 0})
				return err
			},
		})
		if cfg.Pace > 0 {
			time.Sleep(cfg.Pace)
		}
	}
	rep := pool.Drain()
	return rep, firstRunError(rep)
}

// RunFigure8OracleOverload pushes cfg.Instances instances of the
// Figure 8 Oracle process through the overload-protected pool.
func (env *Environment) RunFigure8OracleOverload(cfg OverloadConfig) (sched.PoolReport, error) {
	cfg = cfg.normalized()
	p, err := env.BuildFigure8OracleResilient(cfg.Resilience)
	if err != nil {
		return sched.PoolReport{}, err
	}
	d, err := env.Engine.Deploy(p)
	if err != nil {
		return sched.PoolReport{}, err
	}
	pool := env.newOverloadPool(cfg, "Oracle", env.Engine.DeadLetters)
	for i := 0; i < cfg.Instances; i++ {
		pool.Submit(context.Background(), sched.CtxJob{
			Stack: "Oracle",
			Name:  fmt.Sprintf("Figure8_Oracle#%d", i),
			Class: cfg.classFor(i),
			Run: func(ctx context.Context) error {
				_, err := d.RunCtx(ctx, nil)
				return err
			},
		})
		if cfg.Pace > 0 {
			time.Sleep(cfg.Pace)
		}
	}
	rep := pool.Drain()
	return rep, firstRunError(rep)
}

// firstRunError returns the first non-shed instance error in the report
// (sheds are expected overload outcomes, not failures).
func firstRunError(rep sched.PoolReport) error {
	for _, r := range rep.Results {
		if !r.Shed && r.Err != nil {
			return fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return nil
}
