package wfsql

import (
	"testing"

	"wfsql/internal/chaos"
	"wfsql/internal/obsv"
	"wfsql/internal/sched"
)

// This file is the parallel-execution matrix for the tentpole scheduler:
// N instances of each product stack's running example driven through
// internal/sched against one shared database, under -race. The invariant
// is multiplicative: every instance appends one confirmation per approved
// item type, so ConfirmationCount() == Instances × ApprovedItemTypes().

const (
	parInstances = 8
	parWorkers   = 4
)

// parallelStacks enumerates the three product stacks' parallel runners.
func parallelStacks() []struct {
	name string
	run  func(env *Environment, cfg ParallelConfig) (sched.Report, error)
} {
	return []struct {
		name string
		run  func(env *Environment, cfg ParallelConfig) (sched.Report, error)
	}{
		{"BIS", func(env *Environment, cfg ParallelConfig) (sched.Report, error) {
			return env.RunFigure4BISParallel(cfg)
		}},
		{"WF", func(env *Environment, cfg ParallelConfig) (sched.Report, error) {
			return env.RunFigure6WFParallel(cfg)
		}},
		{"Oracle", func(env *Environment, cfg ParallelConfig) (sched.Report, error) {
			return env.RunFigure8OracleParallel(cfg)
		}},
	}
}

// TestParallelFiguresAllStacks runs N instances of each figure on a
// 4-worker pool and checks the multiplicative confirmation invariant,
// the report shape, and the scheduler's obsv counters.
func TestParallelFiguresAllStacks(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	for _, tc := range parallelStacks() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			env := NewEnvironment(w)
			o := env.EnableObservability(nil)
			rep, err := tc.run(env, ParallelConfig{Instances: parInstances, Workers: parWorkers})
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if rep.Jobs != parInstances || rep.Failed != 0 || rep.Workers != parWorkers {
				t.Fatalf("report = %+v", rep)
			}
			if rep.Throughput <= 0 {
				t.Fatalf("throughput = %v", rep.Throughput)
			}
			want := parInstances * env.ApprovedItemTypes()
			if got := env.ConfirmationCount(); got != want {
				t.Fatalf("confirmations = %d, want %d (instances × item types)", got, want)
			}
			if got := o.M().Counter("sched.ok").Value(); got != parInstances {
				t.Fatalf("sched.ok = %d, want %d", got, parInstances)
			}
			if got := o.M().Histogram("sched.run_ms").Count(); got != parInstances {
				t.Fatalf("sched.run_ms count = %d, want %d", got, parInstances)
			}
		})
	}
}

// TestParallelMatchesSerial checks that a parallel run commits exactly
// the same confirmation rows as the same instance count run serially
// (Workers=1) — concurrency must not change visible effects.
func TestParallelMatchesSerial(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	for _, tc := range parallelStacks() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serialEnv := NewEnvironment(w)
			if _, err := tc.run(serialEnv, ParallelConfig{Instances: parInstances, Workers: 1}); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			want := confirmationRows(t, serialEnv)

			parEnv := NewEnvironment(w)
			if _, err := tc.run(parEnv, ParallelConfig{Instances: parInstances, Workers: parWorkers}); err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if got := confirmationRows(t, parEnv); !sameRows(got, want) {
				t.Fatalf("parallel rows diverge from serial:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestParallelUnderChaos replays the chaos matrix's transient fault
// window with the scheduler enabled: N instances per stack race through
// a faulting supplier, each healing via its invoke retry policy, and the
// multiplicative invariant still holds.
func TestParallelUnderChaos(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	cfg := ParallelConfig{
		Instances:  parInstances,
		Workers:    parWorkers,
		Resilience: ResilienceConfig{Invoke: quickPolicy(10), SQL: quickPolicy(10)},
	}

	t.Run("BIS", func(t *testing.T) {
		env := NewEnvironment(w)
		plan := chaos.NewFaultPlan(7)
		plan.FailRate = 0.2
		if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
			t.Fatal(err)
		}
		if _, err := env.RunFigure4BISParallel(cfg); err != nil {
			t.Fatalf("parallel run under chaos: %v", err)
		}
		if plan.Injected() == 0 {
			t.Fatal("fault plan injected nothing — test proved nothing")
		}
		if got, want := env.ConfirmationCount(), parInstances*env.ApprovedItemTypes(); got != want {
			t.Fatalf("confirmations = %d, want %d", got, want)
		}
	})

	t.Run("WF", func(t *testing.T) {
		env := NewEnvironment(w)
		plan := chaos.NewFaultPlan(7)
		plan.FailRate = 0.2
		env.Runtime.RegisterService("OrderFromSupplier", plan.WrapService(
			func(req map[string]string) (map[string]string, error) {
				return env.Supplier.Handle(req)
			}))
		if _, err := env.RunFigure6WFParallel(cfg); err != nil {
			t.Fatalf("parallel run under chaos: %v", err)
		}
		if plan.Injected() == 0 {
			t.Fatal("fault plan injected nothing")
		}
		if got, want := env.ConfirmationCount(), parInstances*env.ApprovedItemTypes(); got != want {
			t.Fatalf("confirmations = %d, want %d", got, want)
		}
	})

	t.Run("Oracle", func(t *testing.T) {
		env := NewEnvironment(w)
		plan := chaos.NewFaultPlan(7)
		plan.FailRate = 0.2
		if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
			t.Fatal(err)
		}
		if _, err := env.RunFigure8OracleParallel(cfg); err != nil {
			t.Fatalf("parallel run under chaos: %v", err)
		}
		if plan.Injected() == 0 {
			t.Fatal("fault plan injected nothing")
		}
		if got, want := env.ConfirmationCount(), parInstances*env.ApprovedItemTypes(); got != want {
			t.Fatalf("confirmations = %d, want %d", got, want)
		}
	})
}

// TestParallelJournaledInstancesComplete attaches the durable journal to
// both hosts and runs the parallel matrix: every concurrent instance
// writes its own instance journal, and after the run the journal holds
// zero in-flight instances (all begin/complete pairs matched up despite
// interleaved appends).
func TestParallelJournaledInstancesComplete(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	for _, tc := range parallelStacks() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			env := NewEnvironment(w)
			rec := openJournal(t, t.TempDir())
			defer rec.Close()
			env.Engine.AttachJournal(rec)
			env.Runtime.AttachJournal(rec)

			if _, err := tc.run(env, ParallelConfig{Instances: parInstances, Workers: parWorkers}); err != nil {
				t.Fatalf("journaled parallel run: %v", err)
			}
			if n := len(rec.InFlight()); n != 0 {
				t.Fatalf("journal holds %d in-flight instances after completion, want 0", n)
			}
			if got, want := env.ConfirmationCount(), parInstances*env.ApprovedItemTypes(); got != want {
				t.Fatalf("confirmations = %d, want %d", got, want)
			}
		})
	}
}

// TestParallelStatementCacheAndLockWait checks the tentpole's sqldb
// surface under scheduler load: repeated parallel WF instances hit the
// parsed-statement cache (same SQL text across instances) and every
// statement reports its engine-lock wait through the obsv histogram.
func TestParallelStatementCacheAndLockWait(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3})
	o := env.EnableObservability(obsv.New())
	if _, err := env.RunFigure6WFParallel(ParallelConfig{Instances: parInstances, Workers: parWorkers}); err != nil {
		t.Fatal(err)
	}
	cs := env.DB.StmtCacheStats()
	if cs.Hits == 0 {
		t.Fatalf("statement cache hits = 0 across %d identical instances (stats %+v)", parInstances, cs)
	}
	m := o.M()
	if got := m.Counter("sqldb.stmtcache.hits").Value(); got != cs.Hits {
		t.Fatalf("obsv cache-hit counter = %d, db stats say %d", got, cs.Hits)
	}
	lw := m.Histogram("sqldb.lock_wait_ms")
	if lw.Count() == 0 {
		t.Fatal("sqldb.lock_wait_ms histogram empty — lock waits not surfaced")
	}
	// Paranoia: time should be sane (histogram observed non-negative).
	if s := lw.Summary(); s.Max < 0 {
		t.Fatalf("negative lock wait recorded: %+v", s)
	}
}
