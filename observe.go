package wfsql

import (
	"io"

	"wfsql/internal/obsv"
)

// This file attaches one observability bundle (internal/obsv) across a
// whole environment so a single Figure-4/6/8 run emits a complete
// hierarchical trace — instance → activity → SQL statement / bus call —
// and one metrics registry accumulates every layer's counters and
// latency histograms (engine activities, retries, breaker transitions,
// dead letters, journal appends/syncs/replays, sqldb parse/exec time
// and index-hit ratio, bus latency).

// EnableObservability attaches the given bundle (obsv.New() when nil)
// to every layer of the environment — database, service bus, BPEL
// engine, WF runtime, and the Oracle extension functions — and returns
// it. Attach sinks (obsv.NewCollector, obsv.NewJSONLWriter) to
// o.Tracer before or after enabling; metrics are read from o.Metrics.
func (env *Environment) EnableObservability(o *obsv.Observability) *obsv.Observability {
	if o == nil {
		o = obsv.New()
	}
	env.obs = o
	env.DB.SetObservability(o)
	env.Bus.SetObservability(o)
	env.Engine.SetObservability(o)
	env.Runtime.SetObservability(o)
	env.Funcs.SetObservability(o)
	return o
}

// DisableObservability detaches tracing and metrics from every layer.
func (env *Environment) DisableObservability() {
	env.obs = nil
	env.DB.SetObservability(nil)
	env.Bus.SetObservability(nil)
	env.Engine.SetObservability(nil)
	env.Runtime.SetObservability(nil)
	env.Funcs.SetObservability(nil)
}

// Observability returns the attached bundle (nil if none). The bundle's
// T()/M() accessors are nil-safe.
func (env *Environment) Observability() *obsv.Observability { return env.obs }

// TraceTo attaches (enabling observability first if needed) a JSONL
// trace writer: every finished span is written as one JSON line to w.
// It returns the writer so callers can check Err() after the run.
func (env *Environment) TraceTo(w io.Writer) *obsv.JSONLWriter {
	o := env.obs
	if o == nil {
		o = env.EnableObservability(nil)
	}
	jw := obsv.NewJSONLWriter(w)
	o.T().AddSink(jw)
	return jw
}

// WriteMetrics writes the attached registry's snapshot as indented JSON
// (no-op registry snapshot when observability is disabled).
func (env *Environment) WriteMetrics(w io.Writer) error {
	return obsv.WriteMetricsJSON(w, env.obs.M())
}
