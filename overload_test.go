package wfsql

import (
	"context"
	"errors"
	"testing"
	"time"

	"wfsql/internal/admit"
	"wfsql/internal/journal"
	"wfsql/internal/resilience"
	"wfsql/internal/sqldb"
)

// This file is the overload chaos matrix: a burst of instances against a
// small worker pool with injected supplier latency, run under -race.
// The invariants: the admission queue never exceeds its bound, every
// submitted instance is accounted exactly once (shed + completed ==
// submitted), completed instances commit exactly what serial execution
// would, shed instances are dead-lettered with a SHED reason, and load
// shedding keeps p99 queue wait strictly below the unbounded baseline.

const (
	overloadInstances = 256
	overloadWorkers   = 4
	supplierLatency   = 5 * time.Millisecond
)

func overloadWorkload() Workload {
	return Workload{Orders: 8, Items: 2, ApprovalPercent: 100, Seed: 3}
}

// TestOverloadBurstShedConservation is the headline chaos test: 256
// instances burst onto 4 workers through a bounded Shed queue while
// every supplier call costs 5ms.
func TestOverloadBurstShedConservation(t *testing.T) {
	env := NewEnvironment(overloadWorkload())
	o := env.EnableObservability(nil)
	env.Bus.SetLatency(supplierLatency)

	const bound = 8
	rep, err := env.RunFigure4BISOverload(OverloadConfig{
		Instances:  overloadInstances,
		Workers:    overloadWorkers,
		QueueBound: bound,
		Policy:     admit.Shed,
	})
	if err != nil {
		t.Fatalf("overload run: %v", err)
	}

	// Nothing lost, nothing double-counted.
	if rep.Submitted != overloadInstances {
		t.Fatalf("submitted = %d, want %d", rep.Submitted, overloadInstances)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed = %d, want 0 (no budget, healthy supplier)", rep.Failed)
	}
	if rep.Completed+rep.Shed != rep.Submitted {
		t.Fatalf("conservation violated: completed %d + shed %d != submitted %d",
			rep.Completed, rep.Shed, rep.Submitted)
	}
	if rep.Shed == 0 {
		t.Fatal("no sheds: burst did not overload the bounded queue")
	}
	if rep.Completed == 0 {
		t.Fatal("no completions under overload — shedding must protect goodput, not replace it")
	}

	// No instance both sheds and completes: every submitted name appears
	// exactly once across results.
	seen := map[string]int{}
	for _, r := range rep.Results {
		seen[r.Name]++
	}
	if int64(len(seen)) != rep.Submitted {
		t.Fatalf("distinct results = %d, want %d", len(seen), rep.Submitted)
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("instance %s accounted %d times", name, n)
		}
	}

	// The queue never exceeded its bound (report watermark and gauge).
	if rep.QueueHighWater > bound {
		t.Fatalf("queue high water %d exceeds bound %d", rep.QueueHighWater, bound)
	}
	if hw := o.M().Gauge("sched.queue_depth").High(); hw > bound {
		t.Fatalf("sched.queue_depth high watermark %v exceeds bound %d", hw, bound)
	}

	// Completed instances are serial-equivalent: each commits exactly one
	// confirmation per approved item type, sheds commit nothing.
	want := int(rep.Completed) * env.ApprovedItemTypes()
	if got := env.ConfirmationCount(); got != want {
		t.Fatalf("confirmations = %d, want %d (completed × item types)", got, want)
	}

	// Every shed instance is dead-lettered with the SHED reason.
	letters := env.Engine.DeadLetters.Entries()
	shedLetters := 0
	for _, dl := range letters {
		if dl.Reason == resilience.ReasonShed {
			shedLetters++
			if dl.Activity != "Admission" || dl.Target != "BIS" {
				t.Fatalf("malformed shed dead letter: %+v", dl)
			}
		}
	}
	if int64(shedLetters) != rep.Shed {
		t.Fatalf("SHED dead letters = %d, want %d", shedLetters, rep.Shed)
	}

	// Metrics surfaced the shedding.
	if got := o.M().Counter("admit.shed").Value(); got != rep.Shed {
		t.Fatalf("admit.shed = %d, want %d", got, rep.Shed)
	}
}

// TestOverloadShedBeatsUnboundedQueueWait: under the same burst, p99
// queue wait with a bounded Shed queue is strictly below the unbounded
// (Block, capacity >= burst) baseline — the whole point of admission
// control.
func TestOverloadShedBeatsUnboundedQueueWait(t *testing.T) {
	run := func(policy admit.Policy, bound int) time.Duration {
		env := NewEnvironment(overloadWorkload())
		env.Bus.SetLatency(supplierLatency)
		rep, err := env.RunFigure4BISOverload(OverloadConfig{
			Instances:  overloadInstances,
			Workers:    overloadWorkers,
			QueueBound: bound,
			Policy:     policy,
		})
		if err != nil {
			t.Fatalf("run(%v,%d): %v", policy, bound, err)
		}
		return rep.QueueWaitP99()
	}

	baseline := run(admit.Block, overloadInstances) // effectively unbounded
	shed := run(admit.Shed, 8)
	if shed >= baseline {
		t.Fatalf("p99 queue wait under Shed (%v) not below unbounded baseline (%v)", shed, baseline)
	}
}

// TestOverloadBudgetCancelsAtBoundaries: with a per-instance budget far
// below the burst's drain time, instances expire in the queue (shed
// without starting) or mid-run (cancelled at the next activity/statement
// boundary with a budget fault). Conservation still holds and every
// failure is a budget error — never a hang.
func TestOverloadBudgetCancelsAtBoundaries(t *testing.T) {
	env := NewEnvironment(overloadWorkload())
	env.Bus.SetLatency(supplierLatency)

	rep, err := env.RunFigure4BISOverload(OverloadConfig{
		Instances:  64,
		Workers:    2,
		QueueBound: 64,
		Policy:     admit.Block,
		Budget:     40 * time.Millisecond,
	})
	// Budget faults are real instance failures; assert on the report, not err.
	_ = err

	if rep.Completed+rep.Failed+rep.Shed != rep.Submitted {
		t.Fatalf("conservation violated: %+v", rep)
	}
	if rep.Shed == 0 {
		t.Fatal("expected expired-in-queue sheds with a 40ms budget behind a 2-worker drain")
	}
	for _, r := range rep.Results {
		if r.Shed {
			if r.ShedReason != admit.ReasonExpiredInQueue && r.ShedReason != admit.ReasonDeadline {
				t.Fatalf("shed reason = %q, want an expiry reason", r.ShedReason)
			}
			continue
		}
		if r.Err != nil &&
			!errors.Is(r.Err, context.DeadlineExceeded) &&
			!errors.Is(r.Err, sqldb.ErrBudgetExhausted) {
			t.Fatalf("non-budget failure under budget pressure: %v", r.Err)
		}
	}
}

// TestOverloadBrownoutDegradesAndRecovers: sustained pressure over the
// watermark activates the brown-out — deferrable instances are shed with
// a brownout reason and the journal sync policy relaxes always→critical
// — and draining the queue deactivates it, restoring the policy.
func TestOverloadBrownoutDegradesAndRecovers(t *testing.T) {
	env := NewEnvironment(overloadWorkload())
	o := env.EnableObservability(nil)
	env.Bus.SetLatency(supplierLatency)

	rec, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rec.SetSyncPolicy(journal.SyncPolicy{Mode: journal.SyncAlways})
	env.Engine.AttachJournal(rec)

	rep, err := env.RunFigure4BISOverload(OverloadConfig{
		Instances:       128,
		Workers:         overloadWorkers,
		QueueBound:      16,
		Policy:          admit.Block,
		BrownoutHigh:    8,
		BrownoutWindow:  time.Millisecond,
		DeferrableEvery: 4,
	})
	if err != nil {
		t.Fatalf("overload run: %v", err)
	}
	if rep.Completed+rep.Shed != rep.Submitted {
		t.Fatalf("conservation violated: %+v", rep)
	}

	if acts := o.M().Counter("brownout.activations").Value(); acts == 0 {
		t.Fatal("brown-out never activated under sustained pressure")
	}
	if high := o.M().Gauge("brownout.active").High(); high != 1 {
		t.Fatalf("brownout.active high = %v, want 1", high)
	}

	// Only deferrable instances were shed, with the brownout reason.
	brownoutSheds := 0
	for _, r := range rep.Results {
		if !r.Shed {
			continue
		}
		if r.Class != admit.Deferrable {
			t.Fatalf("brown-out shed a %v-class instance: %+v", r.Class, r)
		}
		if r.ShedReason != admit.ReasonBrownout {
			t.Fatalf("shed reason = %q, want %q", r.ShedReason, admit.ReasonBrownout)
		}
		brownoutSheds++
	}
	if brownoutSheds == 0 {
		t.Fatal("no deferrable instances shed during brown-out")
	}

	// After the queue drained, the degradation must be rolled back.
	if got := rec.SyncPolicy().Mode; got != journal.SyncAlways {
		t.Fatalf("journal sync policy not restored after brown-out: %v", got)
	}
	if o.M().Gauge("brownout.active").Value() != 0 {
		t.Fatal("brown-out still active after drain")
	}
}

// TestOverloadAIMDLimiterAdapts: with a latency target far below the
// injected supplier latency, the adaptive limiter backs concurrency off
// from Workers toward Min while every admitted instance still completes.
func TestOverloadAIMDLimiterAdapts(t *testing.T) {
	env := NewEnvironment(overloadWorkload())
	o := env.EnableObservability(nil)
	env.Bus.SetLatency(supplierLatency)

	rep, err := env.RunFigure4BISOverload(OverloadConfig{
		Instances:  64,
		Workers:    overloadWorkers,
		QueueBound: 64,
		Policy:     admit.Block,
		AIMDTarget: time.Millisecond, // unreachable with 5ms supplier calls
		AIMDWindow: 8,
	})
	if err != nil {
		t.Fatalf("overload run: %v", err)
	}
	if rep.Completed != rep.Submitted {
		t.Fatalf("completed = %d, want %d", rep.Completed, rep.Submitted)
	}
	if rep.FinalLimit >= overloadWorkers {
		t.Fatalf("final limit = %d, want < %d (multiplicative decrease)", rep.FinalLimit, overloadWorkers)
	}
	if dec := o.M().Counter("admit.limit.decrease").Value(); dec == 0 {
		t.Fatal("limiter never decreased despite p99 >> target")
	}
}

// TestOverloadAllStacksConserve runs a smaller burst through each
// product stack's overload runner: conservation and serial equivalence
// hold on WF and Oracle exactly as on BIS.
func TestOverloadAllStacksConserve(t *testing.T) {
	cases := []struct {
		name string
	}{{"WF"}, {"Oracle"}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := NewEnvironment(overloadWorkload())
			env.Bus.SetLatency(supplierLatency)
			cfg := OverloadConfig{
				Instances:  64,
				Workers:    overloadWorkers,
				QueueBound: 8,
				Policy:     admit.Shed,
			}
			var completed, shed, submitted int64
			switch tc.name {
			case "WF":
				rep, err := env.RunFigure6WFOverload(cfg)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				completed, shed, submitted = rep.Completed, rep.Shed, rep.Submitted
				if n := len(env.Runtime.DeadLetters.Entries()); int64(n) != shed {
					t.Fatalf("WF dead letters = %d, want %d", n, shed)
				}
			case "Oracle":
				rep, err := env.RunFigure8OracleOverload(cfg)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				completed, shed, submitted = rep.Completed, rep.Shed, rep.Submitted
			}
			if completed+shed != submitted {
				t.Fatalf("conservation violated: %d + %d != %d", completed, shed, submitted)
			}
			want := int(completed) * env.ApprovedItemTypes()
			if got := env.ConfirmationCount(); got != want {
				t.Fatalf("confirmations = %d, want %d", got, want)
			}
		})
	}
}
