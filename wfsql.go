// Package wfsql is an executable reproduction of "An Overview of SQL
// Support in Workflow Products" (Vrhovnik, Schwarz, Radeschütz,
// Mitschang; ICDE 2008).
//
// The paper surveys how three commercial workflow products integrate SQL
// into process logic and compares them against nine data management
// patterns. This module rebuilds the entire surveyed stack from scratch:
//
//   - internal/sqldb — an embeddable SQL engine (the database substrate);
//   - internal/engine — a BPEL-style workflow engine (WebSphere Process
//     Server / Oracle BPEL PM role);
//   - internal/mswf — a Workflow Foundation-style runtime with BAL/CAL
//     activity libraries and XOML authoring;
//   - internal/bis, internal/orasoa — the IBM and Oracle SQL-inline
//     layers (SQL activities, set references, XPath extension functions);
//   - internal/dataset — the ADO.NET DataSet/DataAdapter analog;
//   - internal/patterns — the paper's pattern taxonomy with executable
//     conformance cases that regenerate Tables I and II.
//
// This package is the facade: it wires a complete environment (database,
// service bus, engines) and provides the paper's running example —
// aggregate approved orders, order each item type from a supplier, record
// confirmations — on each of the three product stacks (Figures 4, 6, 8).
package wfsql

import (
	"fmt"
	"math/rand"

	"wfsql/internal/engine"
	"wfsql/internal/mswf"
	"wfsql/internal/obsv"
	"wfsql/internal/orasoa"
	"wfsql/internal/patterns"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

// Workload parameterizes the running example's data set.
type Workload struct {
	// Orders is the number of rows in the Orders table.
	Orders int
	// Items is the number of distinct item types.
	Items int
	// ApprovalPercent is the percentage (0-100) of approved orders.
	ApprovalPercent int
	// Seed drives the deterministic workload generator.
	Seed int64
	// PayloadColumns adds extra VARCHAR columns to each order, inflating
	// row width (used by the reference-vs-materialization ablation).
	PayloadColumns int
	// PayloadWidth is the byte width of each payload column.
	PayloadWidth int
}

// DefaultWorkload is the paper-scale workload (the six-order example).
func DefaultWorkload() Workload {
	return Workload{Orders: 6, Items: 3, ApprovalPercent: 67, Seed: 1}
}

// Environment is a fully wired reproduction environment: one database
// seeded with the workload, the sample supplier service on a bus, the
// BPEL engine (IBM/Oracle stacks), and the WF runtime (Microsoft stack).
type Environment struct {
	DB       *sqldb.DB
	Bus      *wsbus.Bus
	Engine   *engine.Engine
	Runtime  *mswf.Runtime
	Supplier *wsbus.OrderFromSupplierService
	Funcs    *orasoa.Functions
	Workload Workload

	obs *obsv.Observability
}

// DataSourceName is the registered data source name of the environment's
// database.
const DataSourceName = "orderdb"

// ConnString is the WF connection string for the environment's database.
const ConnString = "Provider=SqlServer;Data Source=" + DataSourceName

// NewEnvironment builds an environment seeded with the given workload.
func NewEnvironment(w Workload) *Environment {
	if w.Orders <= 0 {
		w = DefaultWorkload()
	}
	if w.Items <= 0 {
		w.Items = 1
	}
	db := sqldb.Open(DataSourceName)
	SeedOrders(db, w)

	bus := wsbus.New()
	supplier := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", supplier.Handle)
	wsbus.RegisterSQLAdapter(bus, "SQLAdapter", db)

	e := engine.New(bus)
	e.RegisterDataSource(DataSourceName, db)

	rt := mswf.NewRuntime()
	rt.RegisterDatabase(DataSourceName, mswf.SQLServer, db)
	rt.RegisterService("OrderFromSupplier", func(req map[string]string) (map[string]string, error) {
		return supplier.Handle(req)
	})

	return &Environment{
		DB: db, Bus: bus, Engine: e, Runtime: rt,
		Supplier: supplier, Funcs: orasoa.NewFunctions(db), Workload: w,
	}
}

// Rebuild models a workflow host restart: the database, service bus,
// supplier ledger, and workload survive (they are external systems),
// while the BPEL engine and the WF runtime — the processes that crashed —
// are constructed fresh, with no in-memory state. Recovery tests attach
// the journal to the rebuilt hosts and resume the in-flight instances.
func (env *Environment) Rebuild() *Environment {
	e := engine.New(env.Bus)
	e.RegisterDataSource(DataSourceName, env.DB)

	rt := mswf.NewRuntime()
	rt.RegisterDatabase(DataSourceName, mswf.SQLServer, env.DB)
	supplier := env.Supplier
	rt.RegisterService("OrderFromSupplier", func(req map[string]string) (map[string]string, error) {
		return supplier.Handle(req)
	})

	out := &Environment{
		DB: env.DB, Bus: env.Bus, Engine: e, Runtime: rt,
		Supplier: supplier, Funcs: orasoa.NewFunctions(env.DB), Workload: env.Workload,
	}
	if env.obs != nil {
		// The surviving external systems (DB, bus) keep their attachment;
		// re-attach the rebuilt hosts to the same bundle.
		out.EnableObservability(env.obs)
	}
	return out
}

// SeedOrders creates and fills the running example's schema on a database.
func SeedOrders(db *sqldb.DB, w Workload) {
	cols := "OrderID INTEGER PRIMARY KEY, ItemID VARCHAR NOT NULL, Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL"
	insCols := "OrderID, ItemID, Quantity, Approved"
	ph := "?, ?, ?, ?"
	for i := 0; i < w.PayloadColumns; i++ {
		cols += fmt.Sprintf(", Payload%d VARCHAR", i)
		insCols += fmt.Sprintf(", Payload%d", i)
		ph += ", ?"
	}
	db.MustExec("DROP TABLE IF EXISTS Orders")
	db.MustExec("DROP TABLE IF EXISTS OrderConfirmations")
	db.MustExec(fmt.Sprintf("CREATE TABLE Orders (%s)", cols))
	db.MustExec("CREATE TABLE OrderConfirmations (ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR)")
	db.MustExec("DROP PROCEDURE IF EXISTS approved_totals")
	db.MustExec(`CREATE PROCEDURE approved_totals () AS
		'SELECT ItemID, SUM(Quantity) AS Quantity FROM Orders
		 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID'`)

	rng := rand.New(rand.NewSource(w.Seed))
	payload := make([]byte, w.PayloadWidth)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}
	ins := fmt.Sprintf("INSERT INTO Orders (%s) VALUES (%s)", insCols, ph)
	s := db.Session()
	stmt, err := s.Prepare(ins)
	if err != nil {
		panic(err)
	}
	for i := 0; i < w.Orders; i++ {
		vals := []sqldb.Value{
			sqldb.Int(int64(i + 1)),
			sqldb.Str(fmt.Sprintf("item%03d", rng.Intn(w.Items))),
			sqldb.Int(int64(1 + rng.Intn(20))),
			sqldb.Bool(rng.Intn(100) < w.ApprovalPercent),
		}
		for c := 0; c < w.PayloadColumns; c++ {
			vals = append(vals, sqldb.Str(string(payload)))
		}
		if _, err := stmt.Exec(vals...); err != nil {
			panic(err)
		}
	}
}

// ConfirmationCount returns the number of recorded order confirmations.
func (env *Environment) ConfirmationCount() int {
	res := env.DB.MustExec("SELECT COUNT(*) FROM OrderConfirmations")
	n, _ := res.Rows[0][0].AsInt()
	return int(n)
}

// ApprovedItemTypes returns the number of distinct item types with
// approved orders (the expected confirmation count).
func (env *Environment) ApprovedItemTypes() int {
	res := env.DB.MustExec("SELECT COUNT(DISTINCT ItemID) FROM Orders WHERE Approved = TRUE")
	n, _ := res.Rows[0][0].AsInt()
	return int(n)
}

// ResetConfirmations clears the confirmations table between runs.
func (env *Environment) ResetConfirmations() {
	env.DB.MustExec("DELETE FROM OrderConfirmations")
}

// TableI regenerates the paper's Table I.
func TableI() string { return patterns.TableI(patterns.Products()) }

// TableII regenerates the paper's Table II.
func TableII() string { return patterns.TableII(patterns.Products()) }

// VerifyTableII executes every conformance case backing Table II and
// returns the rendered table plus descriptions of any failures (empty on
// full conformance).
func VerifyTableII() (string, []string) {
	text, failures := patterns.VerifiedTableII(patterns.Products())
	var msgs []string
	for _, f := range failures {
		msgs = append(msgs, fmt.Sprintf("%s %s/%s: %v", f.Product, f.Mechanism, f.Pattern, f.Err))
	}
	return text, msgs
}
