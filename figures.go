package wfsql

import (
	"fmt"

	"wfsql/internal/bis"
	"wfsql/internal/engine"
	"wfsql/internal/mswf"
)

// This file builds the paper's running example — Figures 4, 6, and 8 —
// on each of the three product stacks. All three produce identical
// external effects: one confirmed supplier order per approved item type,
// recorded in the OrderConfirmations table.

// aggregationSQL is the paper's SQL1 query over the Orders table. It is
// kept on one line because it is embedded into XPath string literals
// (Oracle's query-database and the adapter's message parts).
const aggregationSQL = `SELECT ItemID, SUM(Quantity) AS Quantity FROM Orders WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`

// BuildFigure4BIS builds the Figure 4 process on the IBM BIS stack:
// SQL activity → result set reference → retrieve set → while+snippet
// cursor → invoke + SQL activity per tuple. It is the zero-config case of
// BuildFigure4BISResilient (no retries, no breaker, no dead-lettering).
func (env *Environment) BuildFigure4BIS() *engine.Process {
	return env.BuildFigure4BISResilient(ResilienceConfig{})
}

// RunFigure4BIS deploys and executes the Figure 4 process.
func (env *Environment) RunFigure4BIS() error {
	d, err := env.Engine.Deploy(env.BuildFigure4BIS())
	if err != nil {
		return err
	}
	_, err = d.Run(nil)
	return err
}

// BuildFigure6WF builds the Figure 6 workflow on the WF stack:
// SQLDatabase₁ materializes the aggregation into a DataSet, a while
// activity iterates it, invoke calls the supplier, SQLDatabase₂ records
// the confirmation. Initial host variables must include Index=0. It is the
// zero-config case of BuildFigure6WFResilient.
func (env *Environment) BuildFigure6WF() mswf.Activity {
	return env.BuildFigure6WFResilient(ResilienceConfig{})
}

// RunFigure6WF executes the Figure 6 workflow.
func (env *Environment) RunFigure6WF() error {
	_, err := env.Runtime.Run(env.BuildFigure6WF(), map[string]any{"Index": 0})
	return err
}

// BuildFigure8Oracle builds the Figure 8 process on the Oracle SOA stack:
// Assign₁ calls ora:query-database, a while+Java-Snippet cursor iterates
// the XML RowSet, invoke calls the supplier, Assign₂ calls
// ora:processXSQL to execute the INSERT. It is the zero-config case of
// BuildFigure8OracleResilient.
func (env *Environment) BuildFigure8Oracle() (*engine.Process, error) {
	return env.BuildFigure8OracleResilient(ResilienceConfig{})
}

// RunFigure8Oracle deploys and executes the Figure 8 process.
func (env *Environment) RunFigure8Oracle() error {
	p, err := env.BuildFigure8Oracle()
	if err != nil {
		return err
	}
	d, err := env.Engine.Deploy(p)
	if err != nil {
		return err
	}
	_, err = d.Run(nil)
	return err
}

// RunFigure4BISQueryOnly executes only the Figure 4 query step on the BIS
// stack: SQL1 fills a result set reference and the result stays in the
// data source — no materialization into the process space. Used by the
// Figure 1 adapter-vs-inline contrast and the reference-passing ablation.
func (env *Environment) RunFigure4BISQueryOnly() error {
	p := bis.NewProcess("Figure4QueryOnly").
		DataSourceVariable("DS", DataSourceName).
		InputSetReference("SR_Orders", "Orders").
		ResultSetReference("SR_ItemList").
		Body(bis.NewSQL("SQL1", "DS",
			`SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders#
			 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`).Into("SR_ItemList")).
		Build()
	d, err := env.Engine.Deploy(p)
	if err != nil {
		return err
	}
	_, err = d.Run(nil)
	return err
}

// RunAdapterVariant executes the same aggregation job through the
// *adapter technology* of Figure 1: the process logic only sees a generic
// SQL adapter service on the bus; data management stays outside the
// choreography. It is used by the Figure 1 contrast benchmark/example.
func (env *Environment) RunAdapterVariant() error {
	p := &engine.Process{
		Name: "AdapterVariant",
		Variables: []engine.VarDecl{
			{Name: "rowsetXML", Kind: engine.ScalarVar},
			{Name: "rows", Kind: engine.ScalarVar},
		},
		Body: engine.NewInvoke("callAdapter", "SQLAdapter").
			In("statement", fmt.Sprintf("%q", aggregationSQL)).
			Out("rowset", "rowsetXML").
			Out("rows", "rows"),
	}
	d, err := env.Engine.Deploy(p)
	if err != nil {
		return err
	}
	_, err = d.Run(nil)
	return err
}
