package wfsql

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's per-experiment index) and runs the
// ablations DESIGN.md calls out. The paper reports no absolute numbers —
// it explicitly deems cross-product performance comparison meaningless —
// so these benchmarks quantify the *qualitative* claims: who moves data,
// who bundles transactions, where workarounds cost.

import (
	"fmt"
	"testing"
	"time"

	"wfsql/internal/bis"
	"wfsql/internal/dataset"
	"wfsql/internal/engine"
	"wfsql/internal/mswf"
	"wfsql/internal/orasoa"
	"wfsql/internal/patterns"
	"wfsql/internal/sqldb"
)

// buildOracleCursorBench assembles the Oracle cursor workload: import a
// RowSet via the given assign, then iterate it with the while+snippet
// workaround.
func buildOracleCursorBench(env *Environment, importAssign engine.Activity) *engine.Process {
	return orasoa.NewProcess("cursor", env.Funcs).
		XMLVariable("rs", "").XMLVariable("Cur", "").Variable("pos", "1").
		Body(engine.NewSequence("m",
			importAssign,
			orasoa.CursorLoop("c", "rs", "Cur", "pos", &engine.Empty{ActivityName: "visit"}))).
		Build()
}

// --- Table I / Table II ---

// BenchmarkTableI_Generate regenerates Table I from live introspection.
func BenchmarkTableI_Generate(b *testing.B) {
	prods := patterns.Products()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(patterns.TableI(prods)) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableII_Conformance executes the full conformance suite (29
// cases, each against a fresh database) that backs Table II.
func BenchmarkTableII_Conformance(b *testing.B) {
	prods := patterns.Products()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results := patterns.RunConformance(prods)
		if len(patterns.Failures(results)) != 0 {
			b.Fatal("conformance failure")
		}
	}
}

// --- Figure 1: adapter technology vs SQL inline support ---

// BenchmarkFig1_AdapterVsInline contrasts the two integration styles of
// Figure 1 on the same aggregation job. bytes/op-style metrics are
// reported as result-bytes moved into the process space.
func BenchmarkFig1_AdapterVsInline(b *testing.B) {
	for _, orders := range []int{100, 1000, 10000} {
		w := Workload{Orders: orders, Items: orders / 10, ApprovalPercent: 70, Seed: 3}
		b.Run(fmt.Sprintf("adapter/orders=%d", orders), func(b *testing.B) {
			env := NewEnvironment(w)
			env.DB.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.RunAdapterVariant(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(env.DB.Stats().BytesReturned)/float64(b.N), "resultB/op")
		})
		b.Run(fmt.Sprintf("inline/orders=%d", orders), func(b *testing.B) {
			env := NewEnvironment(w)
			env.DB.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.RunFigure4BISQueryOnly(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(env.DB.Stats().BytesReturned)/float64(b.N), "resultB/op")
		})
	}
}

// --- Figure 2: the nine data management patterns ---

// BenchmarkFig2_Patterns runs every executable conformance case of every
// product (workarounds included), each on a fresh environment, giving the
// full product × pattern cost matrix.
func BenchmarkFig2_Patterns(b *testing.B) {
	for _, p := range patterns.Products() {
		info := p.Info()
		for _, c := range p.Conformance() {
			c := c
			b.Run(fmt.Sprintf("%s/%s/%s", info.Vendor, c.Pattern, c.Support), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					env := patterns.NewEnv()
					if err := c.Run(env); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figures 3, 5, 7: the three product architectures ---

// BenchmarkFig3_BISDeployExecute measures the WID→WPS pipeline: build the
// BIS process model, deploy it, and execute an instance.
func BenchmarkFig3_BISDeployExecute(b *testing.B) {
	env := NewEnvironment(Workload{Orders: 50, Items: 5, ApprovalPercent: 60, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := env.BuildFigure4BIS()
		d, err := env.Engine.Deploy(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(nil); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		env.ResetConfirmations()
		b.StartTimer()
	}
}

// BenchmarkFig5_AuthoringModes contrasts WF's authoring modes: code-only
// construction vs markup-only loading (plus both executing).
func BenchmarkFig5_AuthoringModes(b *testing.B) {
	const markup = `
<SequenceActivity x:Name="main">
  <SQLDatabaseActivity x:Name="q"
      ConnectionString="Provider=SqlServer;Data Source=orderdb"
      Statement="SELECT ItemID, SUM(Quantity) AS Q FROM Orders WHERE Approved = TRUE GROUP BY ItemID"
      ResultSet="out"/>
</SequenceActivity>`
	b.Run("markup-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mswf.LoadXOML(markup); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("markup-run", func(b *testing.B) {
		env := NewEnvironment(Workload{Orders: 50, Items: 5, ApprovalPercent: 60, Seed: 1})
		wf := mswf.MustLoadXOML(markup)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.Runtime.Run(wf, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("code-run", func(b *testing.B) {
		env := NewEnvironment(Workload{Orders: 50, Items: 5, ApprovalPercent: 60, Seed: 1})
		wf := mswf.NewSQLDatabase("q", ConnString,
			"SELECT ItemID, SUM(Quantity) AS Q FROM Orders WHERE Approved = TRUE GROUP BY ItemID").
			Into("out")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.Runtime.Run(wf, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7_OracleDeployExecute measures the BPEL Designer→Core BPEL
// Engine pipeline for the Oracle stack.
func BenchmarkFig7_OracleDeployExecute(b *testing.B) {
	env := NewEnvironment(Workload{Orders: 50, Items: 5, ApprovalPercent: 60, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := env.BuildFigure8Oracle()
		if err != nil {
			b.Fatal(err)
		}
		d, err := env.Engine.Deploy(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(nil); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		env.ResetConfirmations()
		b.StartTimer()
	}
}

// --- Figures 4, 6, 8: the running example on each stack ---

func benchRunningExample(b *testing.B, run func(env *Environment) error) {
	for _, orders := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("orders=%d", orders), func(b *testing.B) {
			env := NewEnvironment(Workload{Orders: orders, Items: orders / 5, ApprovalPercent: 60, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(env); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				env.ResetConfirmations()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFig4_BISExample runs the Figure 4 workflow (IBM BIS stack).
func BenchmarkFig4_BISExample(b *testing.B) {
	benchRunningExample(b, func(env *Environment) error { return env.RunFigure4BIS() })
}

// BenchmarkFig6_WFExample runs the Figure 6 workflow (Microsoft WF stack).
func BenchmarkFig6_WFExample(b *testing.B) {
	benchRunningExample(b, func(env *Environment) error { return env.RunFigure6WF() })
}

// BenchmarkFig8_OracleExample runs the Figure 8 workflow (Oracle stack).
func BenchmarkFig8_OracleExample(b *testing.B) {
	benchRunningExample(b, func(env *Environment) error { return env.RunFigure8Oracle() })
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblation_ReferenceVsMaterialize quantifies by-reference result
// passing (BIS set references) against by-value materialization (WF
// DataSet / Oracle RowSet) as row width grows.
func BenchmarkAblation_ReferenceVsMaterialize(b *testing.B) {
	for _, payload := range []int{0, 4, 16} {
		w := Workload{Orders: 2000, Items: 40, ApprovalPercent: 70, Seed: 3,
			PayloadColumns: payload, PayloadWidth: 64}
		name := fmt.Sprintf("payloadCols=%d", payload)
		b.Run("reference/"+name, func(b *testing.B) {
			env := NewEnvironment(w)
			env.DB.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Reference: SELECT * result stays external.
				p := bis.NewProcess("ref").
					DataSourceVariable("DS", DataSourceName).
					InputSetReference("SR_Orders", "Orders").
					ResultSetReference("SR_R").
					Body(bis.NewSQL("q", "DS", "SELECT * FROM #SR_Orders#").Into("SR_R")).
					Build()
				d, _ := env.Engine.Deploy(p)
				if _, err := d.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(env.DB.Stats().BytesReturned)/float64(b.N), "resultB/op")
		})
		b.Run("materialize/"+name, func(b *testing.B) {
			env := NewEnvironment(w)
			env.DB.ResetStats()
			wf := mswf.NewSQLDatabase("q", ConnString, "SELECT * FROM Orders").Into("out")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.Runtime.Run(wf, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(env.DB.Stats().BytesReturned)/float64(b.N), "resultB/op")
		})
	}
}

// BenchmarkAblation_AtomicSequence contrasts per-activity transactions
// with an atomic SQL sequence bundling K updates in a long-running
// process.
func BenchmarkAblation_AtomicSequence(b *testing.B) {
	const k = 20
	mkUpdates := func() []engine.Activity {
		var acts []engine.Activity
		for i := 0; i < k; i++ {
			acts = append(acts, bis.NewSQL(fmt.Sprintf("u%d", i), "DS",
				"UPDATE #SR_Orders# SET Quantity = Quantity + 1 WHERE OrderID = 1"))
		}
		return acts
	}
	run := func(b *testing.B, body engine.Activity) {
		env := NewEnvironment(Workload{Orders: 100, Items: 5, ApprovalPercent: 60, Seed: 1})
		p := bis.NewProcess("txn").
			Mode(engine.LongRunning).
			DataSourceVariable("DS", DataSourceName).
			InputSetReference("SR_Orders", "Orders").
			Body(body).
			Build()
		d, err := env.Engine.Deploy(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("per-activity-txn", func(b *testing.B) {
		run(b, engine.NewSequence("seq", mkUpdates()...))
	})
	b.Run("atomic-sequence", func(b *testing.B) {
		run(b, bis.NewAtomicSequence("atomic", mkUpdates()...))
	})
}

// BenchmarkAblation_DynamicBinding measures the cost of BIS's dynamic
// data source binding (rebinding the data source variable every run)
// against a static binding.
func BenchmarkAblation_DynamicBinding(b *testing.B) {
	newEnv := func() *Environment {
		env := NewEnvironment(Workload{Orders: 100, Items: 5, ApprovalPercent: 60, Seed: 1})
		alt := sqldb.Open("altdb")
		SeedOrders(alt, env.Workload)
		env.Engine.RegisterDataSource("altdb", alt)
		return env
	}
	query := bis.NewSQL("q", "DS", "SELECT COUNT(*) FROM #SR_Orders# WHERE Approved = TRUE").Into("SR_R")
	b.Run("static", func(b *testing.B) {
		env := newEnv()
		p := bis.NewProcess("static").
			DataSourceVariable("DS", DataSourceName).
			InputSetReference("SR_Orders", "Orders").
			ResultSetReference("SR_R").
			Body(query).
			Build()
		d, _ := env.Engine.Deploy(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dynamic-rebind", func(b *testing.B) {
		env := newEnv()
		p := bis.NewProcess("dynamic").
			DataSourceVariable("DS", DataSourceName).
			InputSetReference("SR_Orders", "Orders").
			ResultSetReference("SR_R").
			Body(engine.NewSequence("m",
				bis.JavaSnippet("rebind", func(ctx *engine.Ctx) error {
					return bis.RebindDataSource(ctx, "DS", "altdb")
				}),
				query)).
			Build()
		d, _ := env.Engine.Deploy(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_CursorStrategies compares the three products'
// sequential-access strategies over the same materialized set: BIS
// while+snippet over an XML RowSet, WF's native DataSet iteration, and
// Oracle's while+snippet over an XML RowSet.
func BenchmarkAblation_CursorStrategies(b *testing.B) {
	const rows = 500
	w := Workload{Orders: rows, Items: 10, ApprovalPercent: 100, Seed: 1}

	b.Run("bis-while-snippet", func(b *testing.B) {
		env := NewEnvironment(w)
		p := bis.NewProcess("cursor").
			DataSourceVariable("DS", DataSourceName).
			InputSetReference("SR_Orders", "Orders").
			ResultSetReference("SR_R").
			XMLVariable("SV", "").XMLVariable("Cur", "").Variable("pos", "1").
			Body(engine.NewSequence("m",
				bis.NewSQL("q", "DS", "SELECT OrderID, ItemID FROM #SR_Orders#").Into("SR_R"),
				bis.NewRetrieveSet("r", "DS", "SR_R", "SV"),
				bis.CursorLoop("c", "SV", "Cur", "pos", &engine.Empty{ActivityName: "visit"}))).
			Build()
		d, _ := env.Engine.Deploy(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wf-dataset-iteration", func(b *testing.B) {
		env := NewEnvironment(w)
		wf := mswf.NewSequence("m",
			mswf.NewSQLDatabase("q", ConnString, "SELECT OrderID, ItemID FROM Orders").Into("cache"),
			mswf.NewWhile("w",
				func(c *mswf.Context) (bool, error) {
					v, _ := c.Get("cache")
					i, _ := c.GetInt("i")
					return int(i) < v.(*dataset.DataSet).Table("Result").Count(), nil
				},
				mswf.NewCode("visit", func(c *mswf.Context) error {
					i, _ := c.GetInt("i")
					c.Set("i", i+1)
					return nil
				})))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.Runtime.Run(wf, map[string]any{"i": 0}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oracle-while-snippet", func(b *testing.B) {
		env := NewEnvironment(w)
		import2 := engine.NewAssign("q").Copy(
			`ora:query-database("SELECT OrderID, ItemID FROM Orders")`, "rs")
		p := buildOracleCursorBench(env, import2)
		d, _ := env.Engine.Deploy(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_TupleIUDStrategies compares the three products'
// tuple-IUD mechanisms over the same 200-row cache: Oracle's abstract
// bpelx assign operations, BIS's snippet workarounds over the XML RowSet,
// and WF's code-activity DataSet mutation — quantifying the cost spread
// behind Table II's Tuple IUD column.
func BenchmarkAblation_TupleIUDStrategies(b *testing.B) {
	const rows = 200
	rowSetXML := func() string {
		var sb []byte
		sb = append(sb, "<RowSet>"...)
		for i := 0; i < rows; i++ {
			sb = append(sb, fmt.Sprintf("<Row><K>%d</K><V>%d</V></Row>", i, i)...)
		}
		sb = append(sb, "</RowSet>"...)
		return string(sb)
	}()

	b.Run("oracle-bpelx", func(b *testing.B) {
		env := NewEnvironment(DefaultWorkload())
		funcs := env.Funcs
		p := orasoa.NewProcess("t", funcs).
			XMLVariable("rs", rowSetXML).
			XMLVariable("newRow", "<Row><K>999</K><V>1</V></Row>").
			Body(engine.NewSequence("m",
				orasoa.NewBpelxAssign("upd").Copy("'42'", "rs", "Row[100]/V"),
				orasoa.NewBpelxAssign("ins").InsertAfter("$newRow", "rs", "Row[100]"),
				orasoa.NewBpelxAssign("del").Remove("rs", "Row[101]"),
			)).Build()
		d, _ := env.Engine.Deploy(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bis-snippets", func(b *testing.B) {
		env := NewEnvironment(DefaultWorkload())
		p := bis.NewProcess("t").
			DataSourceVariable("DS", DataSourceName).
			XMLVariable("rs", rowSetXML).
			Body(engine.NewSequence("m",
				engine.NewAssign("upd").CopyTo("'42'", "rs", "Row[100]/V"),
				bis.JavaSnippet("ins", func(ctx *engine.Ctx) error {
					return bis.InsertTuple(ctx, "rs", []string{"K", "V"}, []string{"999", "1"})
				}),
				bis.JavaSnippet("del", func(ctx *engine.Ctx) error {
					return bis.DeleteTuple(ctx, "rs", 100)
				}),
			)).Build()
		d, _ := env.Engine.Deploy(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wf-dataset-code", func(b *testing.B) {
		env := NewEnvironment(DefaultWorkload())
		mkCache := func() *dataset.DataSet {
			ds := dataset.New()
			tab := dataset.NewDataTable("Result", "K", "V")
			tab.PrimaryKey = []string{"K"}
			ds.AddTable(tab)
			for i := 0; i < rows; i++ {
				tab.AddRow(sqldb.Int(int64(i)), sqldb.Int(int64(i)))
			}
			tab.AcceptChanges()
			return ds
		}
		wf := mswf.NewCode("iud", func(c *mswf.Context) error {
			v, _ := c.Get("cache")
			tab := v.(*dataset.DataSet).Table("Result")
			row, _ := tab.Find(sqldb.Int(100))
			if err := row.Set("V", sqldb.Int(42)); err != nil {
				return err
			}
			if _, err := tab.AddRow(sqldb.Int(999), sqldb.Int(1)); err != nil {
				return err
			}
			victim, _ := tab.Find(sqldb.Int(101))
			victim.Delete()
			return nil
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := mkCache()
			b.StartTimer()
			if _, err := env.Runtime.Run(wf, map[string]any{"cache": cache}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ServiceLatency sweeps injected service-call latency
// over the Figure 4 workflow. SQL inline activities are unaffected (they
// never cross the bus); the per-tuple invoke dominates as latency grows —
// quantifying why the paper cares about which operations stay inside the
// data source.
func BenchmarkAblation_ServiceLatency(b *testing.B) {
	for _, lat := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
		b.Run(fmt.Sprintf("latency=%s", lat), func(b *testing.B) {
			env := NewEnvironment(Workload{Orders: 50, Items: 5, ApprovalPercent: 60, Seed: 1})
			env.Bus.SetLatency(lat)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.RunFigure4BIS(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				env.ResetConfirmations()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblation_IndexVsScan validates the SQL substrate is a real
// engine: point lookups with a hash index vs full scans.
func BenchmarkAblation_IndexVsScan(b *testing.B) {
	for _, rows := range []int{1000, 10000} {
		seed := func(index bool) *sqldb.DB {
			db := sqldb.Open("bench")
			db.MustExec("CREATE TABLE t (id INTEGER, v VARCHAR)")
			s := db.Session()
			stmt, _ := sqldb.Parse("INSERT INTO t VALUES (?, ?)")
			for i := 0; i < rows; i++ {
				s.ExecStmt(stmt, []sqldb.Value{sqldb.Int(int64(i)), sqldb.Str("v")}, nil)
			}
			if index {
				db.MustExec("CREATE INDEX t_id ON t (id)")
			}
			return db
		}
		b.Run(fmt.Sprintf("scan/rows=%d", rows), func(b *testing.B) {
			db := seed(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec("SELECT v FROM t WHERE id = ?", sqldb.Int(int64(i%rows))); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("index/rows=%d", rows), func(b *testing.B) {
			db := seed(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec("SELECT v FROM t WHERE id = ?", sqldb.Int(int64(i%rows))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
