package wfsql

import (
	"strconv"
	"strings"
	"testing"

	"wfsql/internal/bis"
	"wfsql/internal/chaos"
	"wfsql/internal/engine"
	"wfsql/internal/journal"
)

// This file is the crash-recovery chaos matrix: the running example on all
// three product stacks, killed at each of the journal protocol's crash
// points mid-loop, then recovered by a freshly built host from the
// re-opened journal. Convergence is asserted three ways:
//
//   - the OrderConfirmations table is row-identical to the fault-free
//     baseline (exactly-once visible SQL effects);
//   - the supplier's ordered ledger matches the baseline quantities
//     (exactly-once invoke side effects — a duplicated invocation would
//     double an item's total);
//   - a passive SQL fault plan counts INSERT executions across crash run
//     plus recovery, proving memoized replay never touched the database.

// openJournal opens a recorder in dir, failing the test on error.
func openJournal(t *testing.T, dir string) *journal.Recorder {
	t.Helper()
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	return rec
}

// ledgerMatches checks the supplier's per-item ordered totals against the
// baseline confirmation rows ("ItemID|Quantity|Confirmation").
func ledgerMatches(t *testing.T, env *Environment, baseline []string) {
	t.Helper()
	for _, row := range baseline {
		parts := strings.SplitN(row, "|", 3)
		want, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			t.Fatalf("baseline row %q: %v", row, err)
		}
		if got := env.Supplier.Ordered(parts[0]); got != want {
			t.Errorf("supplier ledger for %s = %d, baseline %d (duplicated or lost invoke)",
				parts[0], got, want)
		}
	}
}

// crashStack describes one product stack for the matrix: how to run the
// figure journaled, how to recover it on a rebuilt host, and which
// activity names are the mid-loop invoke and SQL (insert) effects.
type crashStack struct {
	name      string
	invokeAct string
	sqlAct    string
	useBus    bool // supplier invocations go through the wsbus (BPEL stacks)
	baseline  func(env *Environment) error
	run       func(env *Environment, rec *journal.Recorder) error
	recover   func(env *Environment, rec *journal.Recorder) error
}

func crashStacks() []crashStack {
	return []crashStack{
		{
			name: "BIS_Figure4", invokeAct: "invoke", sqlAct: "SQL2", useBus: true,
			baseline: func(env *Environment) error { return env.RunFigure4BIS() },
			run: func(env *Environment, rec *journal.Recorder) error {
				env.Engine.AttachJournal(rec)
				return env.RunFigure4BISResilient(ResilienceConfig{})
			},
			recover: func(env *Environment, rec *journal.Recorder) error {
				env.Engine.AttachJournal(rec)
				d, err := env.Engine.Deploy(env.BuildFigure4BISResilient(ResilienceConfig{}))
				if err != nil {
					return err
				}
				_, err = engine.Recover(rec, map[string]*engine.Deployment{"Figure4": d})
				return err
			},
		},
		{
			name: "WF_Figure6", invokeAct: "invoke", sqlAct: "SQLDatabase2", useBus: false,
			baseline: func(env *Environment) error { return env.RunFigure6WF() },
			run: func(env *Environment, rec *journal.Recorder) error {
				env.Runtime.AttachJournal(rec)
				return env.RunFigure6WFResilient(ResilienceConfig{})
			},
			recover: func(env *Environment, rec *journal.Recorder) error {
				env.Runtime.AttachJournal(rec)
				root := env.BuildFigure6WFResilient(ResilienceConfig{})
				for _, ij := range rec.InFlight() {
					if _, err := env.Runtime.Resume(root, ij); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			name: "Oracle_Figure8", invokeAct: "Invoke", sqlAct: "Assign2", useBus: true,
			baseline: func(env *Environment) error { return env.RunFigure8Oracle() },
			run: func(env *Environment, rec *journal.Recorder) error {
				env.Engine.AttachJournal(rec)
				return env.RunFigure8OracleResilient(ResilienceConfig{})
			},
			recover: func(env *Environment, rec *journal.Recorder) error {
				env.Engine.AttachJournal(rec)
				p, err := env.BuildFigure8OracleResilient(ResilienceConfig{})
				if err != nil {
					return err
				}
				d, err := env.Engine.Deploy(p)
				if err != nil {
					return err
				}
				_, err = engine.Recover(rec, map[string]*engine.Deployment{"Figure8": d})
				return err
			},
		},
	}
}

var crashPoints = []journal.CrashPoint{
	journal.CrashBeforeJournal,
	journal.CrashAfterJournalBeforeEffect,
	journal.CrashAfterEffect,
}

// TestCrashRecoveryMatrix kills each product stack at every crash point —
// once on the second supplier invocation, once on the second confirmation
// insert — and proves the recovered run converges to the fault-free
// baseline with exactly-once visible effects.
func TestCrashRecoveryMatrix(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	for _, stack := range crashStacks() {
		stack := stack
		want := baselineRows(t, w, stack.baseline)
		items := len(want)
		if items < 3 {
			t.Fatalf("workload too small for a mid-loop crash: %d item types", items)
		}
		for _, point := range crashPoints {
			for _, target := range []struct{ label, activity string }{
				{"invoke", stack.invokeAct},
				{"sql", stack.sqlAct},
			} {
				point, target := point, target
				t.Run(stack.name+"/"+point.String()+"/"+target.label, func(t *testing.T) {
					env := NewEnvironment(w)
					inserts := &chaos.SQLFaultPlan{Kinds: []string{"INSERT"}}
					chaos.InstallSQL(env.DB, inserts)
					defer chaos.InstallSQL(env.DB, nil)

					dir := t.TempDir()
					rec := openJournal(t, dir)
					plan := &chaos.CrashPlan{Point: point, Activity: target.activity, AtEffect: 2}
					chaos.Crash(rec, plan)

					err := stack.run(env, rec)
					if !journal.IsCrash(err) {
						t.Fatalf("crash run: want a crash error, got %v", err)
					}
					if !plan.Fired() {
						t.Fatal("crash plan never fired")
					}
					if err := rec.Close(); err != nil {
						t.Fatalf("close journal: %v", err)
					}

					// A fresh host recovers from the re-opened journal:
					// nothing carries over in memory.
					rec2 := openJournal(t, dir)
					defer rec2.Close()
					if n := len(rec2.InFlight()); n != 1 {
						t.Fatalf("re-opened journal holds %d in-flight instances, want 1", n)
					}
					host := env.Rebuild()
					if err := stack.recover(host, rec2); err != nil {
						t.Fatalf("recovery: %v", err)
					}

					if got := confirmationRows(t, host); !sameRows(got, want) {
						t.Fatalf("recovered confirmations diverge from baseline:\n got %v\nwant %v", got, want)
					}
					ledgerMatches(t, host, want)
					if got := inserts.Seen(); got != items {
						t.Fatalf("%d INSERT executions across crash+recovery, want %d (memoized replay must not re-run SQL)", got, items)
					}
					if stack.useBus {
						if got := env.Bus.Attempts(); got != int64(items) {
							t.Fatalf("%d supplier invocations dispatched, want %d (memoized replay must not re-invoke)", got, items)
						}
					}
					if n := len(rec2.InFlight()); n != 0 {
						t.Fatalf("journal still holds %d in-flight instances after recovery", n)
					}
				})
			}
		}
	}
}

// TestCrashRecoveryBISShortRunning covers the transaction-mode row of the
// recovery matrix: in a short-running BIS process the whole instance is
// one unit of work, so a crash rolls the open transaction back server-side
// (nothing visible survives) and the journal drops the un-committed SQL
// memos — the SQL re-runs as a whole on recovery, while the durable invoke
// memos still replay (an external service's effects do not roll back).
func TestCrashRecoveryBISShortRunning(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	want := baselineRows(t, w, func(env *Environment) error { return env.RunFigure4BIS() })
	items := len(want)

	env := NewEnvironment(w)
	inserts := &chaos.SQLFaultPlan{Kinds: []string{"INSERT"}}
	chaos.InstallSQL(env.DB, inserts)
	defer chaos.InstallSQL(env.DB, nil)

	dir := t.TempDir()
	rec := openJournal(t, dir)
	env.Engine.AttachJournal(rec)
	// Crash after the third invoke: two confirmations are already
	// inserted inside the open transaction.
	plan := &chaos.CrashPlan{Point: journal.CrashAfterEffect, Activity: "invoke", AtEffect: 3}
	chaos.Crash(rec, plan)

	p := env.BuildFigure4BISResilient(ResilienceConfig{})
	p.Mode = engine.ShortRunning
	d, err := env.Engine.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(nil); !journal.IsCrash(err) {
		t.Fatalf("want a crash error, got %v", err)
	}
	crashInserts := inserts.Seen()
	if crashInserts < 2 {
		t.Fatalf("crash run executed %d inserts before dying, want >= 2", crashInserts)
	}
	if n := env.ConfirmationCount(); n != 0 {
		t.Fatalf("crash leaked %d confirmations (open transaction must roll back server-side)", n)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rec2 := openJournal(t, dir)
	defer rec2.Close()
	inflight := rec2.InFlight()
	if len(inflight) != 1 {
		t.Fatalf("want 1 in-flight instance, got %d", len(inflight))
	}
	// The un-committed SQL memos are gone; the durable invoke memos stay.
	for act, memos := range inflight[0].Memos {
		for _, m := range memos {
			if m.Kind != journal.EffectInvoke {
				t.Fatalf("journal kept un-committed %s memo for %s across the crash", m.Kind, act)
			}
		}
	}

	host := env.Rebuild()
	host.Engine.AttachJournal(rec2)
	p2 := host.BuildFigure4BISResilient(ResilienceConfig{})
	p2.Mode = engine.ShortRunning
	d2, err := host.Engine.Deploy(p2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Recover(rec2, map[string]*engine.Deployment{"Figure4": d2}); err != nil {
		t.Fatalf("recovery: %v", err)
	}

	if got := confirmationRows(t, host); !sameRows(got, want) {
		t.Fatalf("recovered confirmations diverge:\n got %v\nwant %v", got, want)
	}
	ledgerMatches(t, host, want)
	// The rolled-back inserts re-ran as part of the unit of work; the
	// invokes did not.
	if got := inserts.Seen(); got != crashInserts+items {
		t.Fatalf("%d INSERT executions total, want %d (whole-unit re-run)", got, crashInserts+items)
	}
	if got := env.Bus.Attempts(); got != int64(items) {
		t.Fatalf("%d supplier invocations, want %d (durable invoke memos must replay)", got, items)
	}
}

// TestCrashRecoveryBISAtomicSequence crashes inside an atomic SQL
// sequence: the journaled SQL memo is transaction-scoped and never
// committed, so recovery discards it and re-runs the whole atomic unit.
func TestCrashRecoveryBISAtomicSequence(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	want := baselineRows(t, w, func(env *Environment) error { return env.RunFigure4BIS() })
	items := len(want)

	build := func(env *Environment) *engine.Process {
		sql1 := bis.NewSQL("SQL1", "DS",
			`SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders#
			 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`).
			Into("SR_ItemList")
		invoke := engine.NewInvoke("invoke", "OrderFromSupplier").
			In("ItemID", "$CurrentItem/ItemID").
			In("Quantity", "$CurrentItem/Quantity").
			Out("OrderConfirmation", "OrderConfirmation")
		sql2 := bis.NewSQL("SQL2", "DS",
			`INSERT INTO #SR_OrderConfirmations# (ItemID, Quantity, Confirmation)
			 VALUES (#CurrentItemID#, #CurrentQuantity#, #OrderConfirmation#)`)
		body := engine.NewSequence("main",
			bis.NewAtomicSequence("atomicHead",
				sql1,
				bis.NewRetrieveSet("retrieveSet", "DS", "SR_ItemList", "SV_ItemList"),
			),
			bis.CursorLoop("cursor", "SV_ItemList", "CurrentItem", "pos",
				engine.NewSequence("loopBody",
					engine.NewAssign("extract").
						Copy("$CurrentItem/ItemID", "CurrentItemID").
						Copy("$CurrentItem/Quantity", "CurrentQuantity"),
					invoke,
					sql2,
				)),
		)
		return bis.NewProcess("Figure4Atomic").
			DataSourceVariable("DS", DataSourceName).
			InputSetReference("SR_Orders", "Orders").
			InputSetReference("SR_OrderConfirmations", "OrderConfirmations").
			ResultSetReference("SR_ItemList").
			XMLVariable("SV_ItemList", "").
			XMLVariable("CurrentItem", "").
			Variable("CurrentItemID", "").
			Variable("CurrentQuantity", "").
			Variable("OrderConfirmation", "").
			Variable("pos", "1").
			Body(body).
			Build()
	}

	env := NewEnvironment(w)
	dir := t.TempDir()
	rec := openJournal(t, dir)
	env.Engine.AttachJournal(rec)
	// Die right after SQL1's effect, with the atomic transaction open: the
	// memo was journaled but its transaction never committed.
	plan := &chaos.CrashPlan{Point: journal.CrashAfterEffect, Activity: "SQL1", AtEffect: 1}
	chaos.Crash(rec, plan)
	d, err := env.Engine.Deploy(build(env))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(nil); !journal.IsCrash(err) {
		t.Fatalf("want a crash error, got %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rec2 := openJournal(t, dir)
	defer rec2.Close()
	inflight := rec2.InFlight()
	if len(inflight) != 1 {
		t.Fatalf("want 1 in-flight instance, got %d", len(inflight))
	}
	if n := inflight[0].MemoCount(); n != 0 {
		t.Fatalf("journal kept %d memo(s) from the un-committed atomic unit, want 0", n)
	}

	host := env.Rebuild()
	host.Engine.AttachJournal(rec2)
	d2, err := host.Engine.Deploy(build(host))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Recover(rec2, map[string]*engine.Deployment{"Figure4Atomic": d2}); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if got := confirmationRows(t, host); !sameRows(got, want) {
		t.Fatalf("recovered confirmations diverge:\n got %v\nwant %v", got, want)
	}
	ledgerMatches(t, host, want)
	if got := env.Bus.Attempts(); got != int64(items) {
		t.Fatalf("%d supplier invocations, want %d", got, items)
	}
}
