package wfsql

import (
	"sort"
	"strings"
	"testing"

	"wfsql/internal/bis"
	"wfsql/internal/chaos"
	"wfsql/internal/engine"
	"wfsql/internal/wsbus"
)

// TestSupplierRejectionPath exercises the running example's failure mode
// the paper's confirmation string implies ("indicates whether the order
// has been processed successfully or not"): a capacity-limited supplier
// rejects large orders, and the process records the rejection rather than
// faulting.
func TestSupplierRejectionPath(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 40, Items: 4, ApprovalPercent: 100, Seed: 5})
	// Replace the unlimited supplier with a capacity-limited one.
	limited := wsbus.NewOrderFromSupplier(50)
	env.Bus.Register("OrderFromSupplier", limited.Handle)

	if err := env.RunFigure4BIS(); err != nil {
		t.Fatal(err)
	}
	res := env.DB.MustExec("SELECT Confirmation FROM OrderConfirmations ORDER BY ItemID")
	var confirmed, rejected int
	for _, row := range res.Rows {
		switch {
		case strings.HasPrefix(row[0].S, "CONFIRMED:"):
			confirmed++
		case strings.HasPrefix(row[0].S, "REJECTED:"):
			rejected++
		default:
			t.Fatalf("unexpected confirmation %q", row[0].S)
		}
	}
	if rejected == 0 {
		t.Fatal("workload should exceed the supplier capacity for some item")
	}
	if confirmed+rejected != env.ApprovedItemTypes() {
		t.Fatalf("%d+%d confirmations for %d item types", confirmed, rejected, env.ApprovedItemTypes())
	}
	// Rejected orders must not accumulate at the supplier.
	for _, row := range res.Rows {
		if strings.HasPrefix(row[0].S, "REJECTED:") {
			item := strings.Split(row[0].S, ":")[1]
			if limited.Ordered(item) != 0 {
				t.Fatalf("rejected item %s accumulated %d at supplier", item, limited.Ordered(item))
			}
		}
	}
}

// TestServiceFaultRollsBackShortRunningProcess injects a hard service
// fault mid-cursor and checks the short-running transaction semantics:
// every SQL2 insert of the partially executed workflow is rolled back.
func TestServiceFaultRollsBackShortRunningProcess(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 30, Items: 6, ApprovalPercent: 100, Seed: 9})
	calls := 0
	env.Bus.Register("OrderFromSupplier", func(req wsbus.Message) (wsbus.Message, error) {
		calls++
		if calls == 3 {
			return nil, &engine.Fault{Name: "supplierDown"}
		}
		return wsbus.Message{"OrderConfirmation": "CONFIRMED:" + req["ItemID"] + ":" + req["Quantity"]}, nil
	})

	// The Figure 4 body, but in a short-running process: all SQL work of
	// the instance shares one transaction.
	body := engine.NewSequence("main",
		bis.NewSQL("SQL1", "DS",
			`SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders#
			 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`).Into("SR_ItemList"),
		bis.NewRetrieveSet("retrieveSet", "DS", "SR_ItemList", "SV_ItemList"),
		bis.CursorLoop("cursor", "SV_ItemList", "CurrentItem", "pos",
			engine.NewSequence("loopBody",
				engine.NewAssign("extract").
					Copy("$CurrentItem/ItemID", "CurrentItemID").
					Copy("$CurrentItem/Quantity", "CurrentQuantity"),
				engine.NewInvoke("invoke", "OrderFromSupplier").
					In("ItemID", "$CurrentItem/ItemID").
					In("Quantity", "$CurrentItem/Quantity").
					Out("OrderConfirmation", "OrderConfirmation"),
				bis.NewSQL("SQL2", "DS",
					`INSERT INTO #SR_OrderConfirmations# (ItemID, Quantity, Confirmation)
					 VALUES (#CurrentItemID#, #CurrentQuantity#, #OrderConfirmation#)`),
			)),
	)
	p := bis.NewProcess("Fig4Short").
		Mode(engine.ShortRunning).
		DataSourceVariable("DS", DataSourceName).
		InputSetReference("SR_Orders", "Orders").
		InputSetReference("SR_OrderConfirmations", "OrderConfirmations").
		ResultSetReference("SR_ItemList").
		XMLVariable("SV_ItemList", "").
		XMLVariable("CurrentItem", "").
		Variable("CurrentItemID", "").
		Variable("CurrentQuantity", "").
		Variable("OrderConfirmation", "").
		Variable("pos", "1").
		Body(body).
		Build()

	d, err := env.Engine.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected service fault to propagate")
	}
	// Two inserts happened before the fault — and were rolled back.
	if n := env.ConfirmationCount(); n != 0 {
		t.Fatalf("short-running rollback leaked %d confirmations", n)
	}
}

// TestServiceFaultKeepsCommittedWorkInLongRunningProcess is the
// long-running counterpart: work committed per activity survives the
// fault — the transactional difference the paper's atomic-SQL-sequence
// discussion is about.
func TestServiceFaultKeepsCommittedWorkInLongRunningProcess(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 30, Items: 6, ApprovalPercent: 100, Seed: 9})
	calls := 0
	env.Bus.Register("OrderFromSupplier", func(req wsbus.Message) (wsbus.Message, error) {
		calls++
		if calls == 3 {
			return nil, &engine.Fault{Name: "supplierDown"}
		}
		return wsbus.Message{"OrderConfirmation": "CONFIRMED"}, nil
	})
	if err := env.RunFigure4BIS(); err == nil {
		t.Fatal("expected service fault to propagate")
	}
	if n := env.ConfirmationCount(); n != 2 {
		t.Fatalf("long-running process should keep 2 committed confirmations, has %d", n)
	}
}

// TestPermanentSupplierFailureDeadLetters extends the rejection-path story
// with the resilience layer's degraded-completion mode: a supplier that
// permanently fails for a subset of item types must not fault the process.
// The run completes, healthy items confirm normally, the failed items'
// confirmations record the dead-lettering, and the engine's dead-letter log
// contains exactly the failed item IDs — no more, no fewer.
func TestPermanentSupplierFailureDeadLetters(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 30, Items: 6, ApprovalPercent: 100, Seed: 9})
	victims := map[string]bool{"item001": true, "item004": true}
	plan := chaos.NewFaultPlan(1)
	plan.FailFirst = 1 << 30
	plan.Permanent = true
	plan.Match = func(req map[string]string) bool { return victims[req["ItemID"]] }
	if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
		t.Fatal(err)
	}

	cfg := ResilienceConfig{Invoke: quickPolicy(3), DeadLetterAbsorb: true}
	if err := env.RunFigure4BISResilient(cfg); err != nil {
		t.Fatalf("process should complete degraded, got fault: %v", err)
	}

	// Every approved item type produced a row; the victims' rows carry the
	// dead-letter marker instead of a supplier confirmation.
	res := env.DB.MustExec("SELECT ItemID, Confirmation FROM OrderConfirmations ORDER BY ItemID")
	if len(res.Rows) != env.ApprovedItemTypes() {
		t.Fatalf("confirmations = %d, want %d", len(res.Rows), env.ApprovedItemTypes())
	}
	for _, row := range res.Rows {
		item, conf := row[0].S, row[1].S
		if victims[item] {
			if conf != "DEADLETTERED:"+item {
				t.Fatalf("victim %s confirmation %q, want DEADLETTERED marker", item, conf)
			}
		} else if !strings.HasPrefix(conf, "CONFIRMED:") {
			t.Fatalf("healthy item %s confirmation %q", item, conf)
		}
	}

	// The dead-letter log holds exactly the failed item IDs.
	var wantKeys []string
	for v := range victims {
		wantKeys = append(wantKeys, v)
	}
	sort.Strings(wantKeys)
	gotKeys := env.Engine.DeadLetters.Keys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("dead-letter keys %v, want %v", gotKeys, wantKeys)
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("dead-letter keys %v, want %v", gotKeys, wantKeys)
		}
	}
	// One record per victim (one loop iteration each), each exhausted on
	// the first attempt because the fault is classified permanent.
	if env.Engine.DeadLetters.Len() != len(wantKeys) {
		t.Fatalf("dead-letter records = %d, want %d", env.Engine.DeadLetters.Len(), len(wantKeys))
	}
	for _, dl := range env.Engine.DeadLetters.Entries() {
		if dl.Attempts != 1 || dl.Target != "OrderFromSupplier" {
			t.Fatalf("dead letter %+v: want 1 attempt against OrderFromSupplier", dl)
		}
	}
}

// TestBusLatencyAffectsInvokeOnly verifies the injectable service latency
// used by benchmarks applies to invocations, not SQL inline activities.
func TestBusLatencyAffectsInvokeOnly(t *testing.T) {
	env := NewEnvironment(DefaultWorkload())
	env.Bus.SetLatency(0)
	if err := env.RunFigure4BIS(); err != nil {
		t.Fatal(err)
	}
	if env.Bus.Calls() != int64(env.ApprovedItemTypes()) {
		t.Fatalf("bus calls: %d, want %d", env.Bus.Calls(), env.ApprovedItemTypes())
	}
}

// TestConcurrentInstances runs many Figure 4 instances concurrently
// against one database: per-instance result tables must not collide, and
// every instance's confirmations must land.
func TestConcurrentInstances(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 20, Items: 4, ApprovalPercent: 100, Seed: 2})
	d, err := env.Engine.Deploy(env.BuildFigure4BIS())
	if err != nil {
		t.Fatal(err)
	}
	const instances = 12
	errs := make(chan error, instances)
	for i := 0; i < instances; i++ {
		go func() {
			_, err := d.Run(nil)
			errs <- err
		}()
	}
	for i := 0; i < instances; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	want := instances * env.ApprovedItemTypes()
	if got := env.ConfirmationCount(); got != want {
		t.Fatalf("confirmations: %d, want %d", got, want)
	}
	// All per-instance result tables were dropped.
	for _, name := range env.DB.TableNames() {
		if strings.HasPrefix(name, "SR_ItemList_i") {
			t.Fatalf("leaked result table %s", name)
		}
	}
}
