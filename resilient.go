package wfsql

import (
	"fmt"

	"wfsql/internal/bis"
	"wfsql/internal/dataset"
	"wfsql/internal/engine"
	"wfsql/internal/mswf"
	"wfsql/internal/orasoa"
	"wfsql/internal/resilience"
)

// ResilienceConfig bundles the reliability policies applied to the running
// example when building the resilient Figure variants. Zero-value fields
// disable the corresponding mechanism, so the plain Figure builders are the
// zero-config case of the resilient ones.
type ResilienceConfig struct {
	// Invoke retries supplier invocations on transient faults.
	Invoke *resilience.Policy
	// SQL retries SQL activities / extension-function statements. How it
	// applies depends on the stack and transaction mode: BIS suppresses
	// it inside transactions (short-running / atomic sequence), WF and
	// Oracle statements autocommit and always retry.
	SQL *resilience.Policy
	// Breaker guards the supplier invocation (BPEL stacks).
	Breaker *resilience.Breaker
	// DeadLetterAbsorb completes the process in a degraded state when
	// invoke retries are exhausted: the confirmation records
	// "DEADLETTERED:<ItemID>" and the dead-letter log keeps the evidence.
	// When false, exhausted retries raise a retryExhausted fault instead.
	DeadLetterAbsorb bool
}

// BuildFigure4BISResilient builds the Figure 4 BIS process with the given
// reliability policies attached to SQL1, the supplier invoke, and SQL2.
func (env *Environment) BuildFigure4BISResilient(cfg ResilienceConfig) *engine.Process {
	sql1 := bis.NewSQL("SQL1", "DS",
		`SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders#
		 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`).
		Into("SR_ItemList").WithRetry(cfg.SQL)

	invoke := engine.NewInvoke("invoke", "OrderFromSupplier").
		In("ItemID", "$CurrentItem/ItemID").
		In("Quantity", "$CurrentItem/Quantity").
		Out("OrderConfirmation", "OrderConfirmation").
		WithRetry(cfg.Invoke).
		WithBreaker(cfg.Breaker)
	if cfg.Invoke != nil || cfg.Breaker != nil {
		invoke = invoke.WithDeadLetter("$CurrentItem/ItemID", cfg.DeadLetterAbsorb)
	}

	sql2 := bis.NewSQL("SQL2", "DS",
		`INSERT INTO #SR_OrderConfirmations# (ItemID, Quantity, Confirmation)
		 VALUES (#CurrentItemID#, #CurrentQuantity#, #OrderConfirmation#)`).
		WithRetry(cfg.SQL)

	body := engine.NewSequence("main",
		sql1,
		bis.NewRetrieveSet("retrieveSet", "DS", "SR_ItemList", "SV_ItemList"),
		bis.CursorLoop("cursor", "SV_ItemList", "CurrentItem", "pos",
			engine.NewSequence("loopBody",
				engine.NewAssign("extract").
					Copy("$CurrentItem/ItemID", "CurrentItemID").
					Copy("$CurrentItem/Quantity", "CurrentQuantity"),
				invoke,
				sql2,
			)),
	)
	return bis.NewProcess("Figure4").
		DataSourceVariable("DS", DataSourceName).
		InputSetReference("SR_Orders", "Orders").
		InputSetReference("SR_OrderConfirmations", "OrderConfirmations").
		ResultSetReference("SR_ItemList").
		XMLVariable("SV_ItemList", "").
		XMLVariable("CurrentItem", "").
		Variable("CurrentItemID", "").
		Variable("CurrentQuantity", "").
		Variable("OrderConfirmation", "").
		Variable("pos", "1").
		Body(body).
		Build()
}

// RunFigure4BISResilient deploys and executes the resilient Figure 4
// process.
func (env *Environment) RunFigure4BISResilient(cfg ResilienceConfig) error {
	d, err := env.Engine.Deploy(env.BuildFigure4BISResilient(cfg))
	if err != nil {
		return err
	}
	_, err = d.Run(nil)
	return err
}

// BuildFigure6WFResilient builds the Figure 6 WF workflow with the given
// reliability policies on both SQL database activities and the supplier
// invocation. Initial host variables must include Index=0.
func (env *Environment) BuildFigure6WFResilient(cfg ResilienceConfig) mswf.Activity {
	sqlDatabase1 := mswf.NewSQLDatabase("SQLDatabase1", ConnString, aggregationSQL).
		Into("SV_ItemList").Keys("ItemID").WithRetry(cfg.SQL)

	bindNext := mswf.NewCode("bindNext", func(c *mswf.Context) error {
		v, _ := c.Get("SV_ItemList")
		ds := v.(*dataset.DataSet)
		i, err := c.GetInt("Index")
		if err != nil {
			return err
		}
		row, err := ds.Table("Result").Row(int(i))
		if err != nil {
			return err
		}
		c.Set("CurrentItemID", row.MustGet("ItemID").S)
		c.Set("CurrentItemQuantity", row.MustGet("Quantity").I)
		c.Set("Index", i+1)
		return nil
	})

	invoke := &mswf.InvokeWebServiceActivity{
		ActivityName: "invoke",
		ServiceName:  "OrderFromSupplier",
		Inputs:       map[string]string{"ItemID": "CurrentItemID", "Quantity": "CurrentItemQuantity"},
		Outputs:      map[string]string{"OrderConfirmation": "OrderConfirmation"},
	}
	invoke.WithRetry(cfg.Invoke)
	if cfg.Invoke != nil {
		invoke.WithDeadLetter("ItemID", cfg.DeadLetterAbsorb)
	}

	sqlDatabase2 := mswf.NewSQLDatabase("SQLDatabase2", ConnString,
		`INSERT INTO OrderConfirmations (ItemID, Quantity, Confirmation)
		 VALUES (@item, @qty, @conf)`).
		Param("@item", "CurrentItemID").
		Param("@qty", "CurrentItemQuantity").
		Param("@conf", "OrderConfirmation").
		WithRetry(cfg.SQL)

	hasMore := func(c *mswf.Context) (bool, error) {
		v, ok := c.Get("SV_ItemList")
		if !ok {
			return false, nil
		}
		i, _ := c.GetInt("Index")
		return int(i) < v.(*dataset.DataSet).Table("Result").Count(), nil
	}

	return mswf.NewSequence("main",
		sqlDatabase1,
		mswf.NewWhile("while", hasMore,
			mswf.NewSequence("loopBody", bindNext, invoke, sqlDatabase2)),
	)
}

// RunFigure6WFResilient executes the resilient Figure 6 workflow.
func (env *Environment) RunFigure6WFResilient(cfg ResilienceConfig) error {
	_, err := env.Runtime.Run(env.BuildFigure6WFResilient(cfg), map[string]any{"Index": 0})
	return err
}

// BuildFigure8OracleResilient builds the Figure 8 Oracle process with the
// given reliability policies: the SQL policy installs on the extension
// function library (covering query-database and processXSQL statements),
// the invoke policy/breaker attach to the supplier invocation.
func (env *Environment) BuildFigure8OracleResilient(cfg ResilienceConfig) (*engine.Process, error) {
	if cfg.SQL != nil {
		env.Funcs.SetRetryPolicy(cfg.SQL)
	}
	if err := env.Funcs.XSQL().RegisterPage("insertConfirmation", `
		<xsql:page>
			<xsql:dml>INSERT INTO OrderConfirmations (ItemID, Quantity, Confirmation)
				VALUES ({@item}, {@qty}, {@conf})</xsql:dml>
		</xsql:page>`); err != nil {
		return nil, err
	}

	// The query and the DML both hide inside Assign activities (Oracle's
	// extension-function idiom); SQLEffect journals them so recovery
	// replays their captured outcome instead of re-running the SQL.
	assign1 := orasoa.SQLEffect(
		engine.NewAssign("Assign1").Copy(
			fmt.Sprintf("ora:query-database(%q)", aggregationSQL), "SV_ItemList"),
		"SV_ItemList")

	invoke := engine.NewInvoke("Invoke", "OrderFromSupplier").
		In("ItemID", "$CurrentItem/ItemID").
		In("Quantity", "$CurrentItem/Quantity").
		Out("OrderConfirmation", "OrderConfirmation").
		WithRetry(cfg.Invoke).
		WithBreaker(cfg.Breaker)
	if cfg.Invoke != nil || cfg.Breaker != nil {
		invoke = invoke.WithDeadLetter("$CurrentItem/ItemID", cfg.DeadLetterAbsorb)
	}

	body := engine.NewSequence("loopBody",
		engine.NewAssign("extract").
			Copy("$CurrentItem/ItemID", "CurrentItemID").
			Copy("$CurrentItem/Quantity", "CurrentQuantity"),
		invoke,
		orasoa.SQLEffect(
			engine.NewAssign("Assign2").Copy(
				`ora:processXSQL('insertConfirmation', 'item', $CurrentItemID, 'qty', $CurrentQuantity, 'conf', $OrderConfirmation)/rowsAffected`,
				"Status"),
			"Status"),
	)

	return orasoa.NewProcess("Figure8", env.Funcs).
		XMLVariable("SV_ItemList", "").
		XMLVariable("CurrentItem", "").
		Variable("CurrentItemID", "").
		Variable("CurrentQuantity", "").
		Variable("OrderConfirmation", "").
		Variable("Status", "").
		Variable("pos", "1").
		Body(engine.NewSequence("main",
			assign1,
			orasoa.CursorLoop("cursor", "SV_ItemList", "CurrentItem", "pos", body),
		)).
		Build(), nil
}

// RunFigure8OracleResilient deploys and executes the resilient Figure 8
// process.
func (env *Environment) RunFigure8OracleResilient(cfg ResilienceConfig) error {
	p, err := env.BuildFigure8OracleResilient(cfg)
	if err != nil {
		return err
	}
	d, err := env.Engine.Deploy(p)
	if err != nil {
		return err
	}
	_, err = d.Run(nil)
	return err
}
