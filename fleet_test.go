package wfsql

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wfsql/internal/admit"
	"wfsql/internal/chaos"
	"wfsql/internal/journal"
	"wfsql/internal/shard"
)

// This file is the fleet chaos matrix: N shards each running the paper's
// example on an independent lease-fenced primary, one shard's primary
// killed mid-burst at every crash point on all three product stacks,
// and the fleet supervisor promoting that shard's warm standby while
// the router buffers the shard's submissions. Fleet-wide conservation
// (Completed + Failed + Shed == Submitted), per-shard exactly-once SQL
// and invoke effects, no cross-shard instance duplication, and fencing
// of the zombie primary are all asserted per cell.

// fleetMatrixStacks pairs each fleet stack with its crash-matrix
// metadata (baseline runner, activity names, bus usage).
func fleetMatrixStacks() []struct {
	fleet FleetStack
	crash crashStack
} {
	crash := map[string]crashStack{}
	for _, cs := range crashStacks() {
		crash[cs.name] = cs
	}
	return []struct {
		fleet FleetStack
		crash crashStack
	}{
		{FleetStackBIS(), crash["BIS_Figure4"]},
		{FleetStackWF(), crash["WF_Figure6"]},
		{FleetStackOracle(), crash["Oracle_Figure8"]},
	}
}

// fleetKeys generates instance keys until every shard is placed at
// least min instances and some shard (the victim) at least min+1,
// returning the keys, per-shard placement counts, and the victim.
func fleetKeys(t *testing.T, f *Fleet, shards, min int) (keys []string, placed []int, victim int) {
	t.Helper()
	placed = make([]int, shards)
	for j := 0; j < 256; j++ {
		key := fmt.Sprintf("order#%d", j)
		keys = append(keys, key)
		placed[f.Router.Place(key)]++
		lo, hi := placed[0], placed[0]
		for _, n := range placed[1:] {
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if len(keys) >= 4*shards && lo >= min && hi >= min+1 {
			break
		}
	}
	for i, n := range placed {
		if n < min {
			t.Fatalf("placement never gave shard %d >= %d instances: %v", i, min, placed)
		}
		if n > placed[victim] {
			victim = i
		}
	}
	return keys, placed, victim
}

// victimKeysAfter returns extra keys homed on the victim shard,
// starting the key sequence after the burst keys.
func victimKeysAfter(f *Fleet, victim, from, n int) []string {
	var out []string
	for j := from; len(out) < n && j < from+4096; j++ {
		key := fmt.Sprintf("order#%d", j)
		if f.Router.Place(key) == victim {
			out = append(out, key)
		}
	}
	return out
}

// TestFleetChaosMatrix kills 1-of-3 shard primaries mid-burst — each
// product stack, each crash point, once on an invoke and once on a SQL
// insert — and proves the fleet converges: the victim's standby is
// promoted by the health state machine, submissions buffered across the
// window complete on the home shard, every shard's confirmations equal
// exactly its placements (no duplication, exactly-once effects), and
// the zombie primary stays fenced with the latch surfaced as a
// shard-level event.
func TestFleetChaosMatrix(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	const shards = 3
	for _, entry := range fleetMatrixStacks() {
		entry := entry
		want := baselineRows(t, w, entry.crash.baseline)
		items := len(want)
		if items < 3 {
			t.Fatalf("workload too small for a mid-loop crash: %d item types", items)
		}
		for _, point := range crashPoints {
			for _, target := range []struct{ label, activity string }{
				{"invoke", entry.crash.invokeAct},
				{"sql", entry.crash.sqlAct},
			} {
				point, target := point, target
				t.Run(entry.fleet.Name+"/"+point.String()+"/"+target.label, func(t *testing.T) {
					f, err := StartFleet(FleetConfig{
						Shards:       shards,
						Workers:      1, // one worker per shard: the victim's crash is deterministic
						QueueBound:   256,
						TTL:          time.Second,
						FailoverWait: 30 * time.Second,
						Workload:     w,
						Dir:          t.TempDir(),
						Stack:        entry.fleet,
					})
					if err != nil {
						t.Fatalf("start fleet: %v", err)
					}
					defer f.Close()

					// Per-shard manual clocks: only the victim's time
					// advances, so healthy shards' leases never expire.
					clocks := make([]*failoverClock, shards)
					for i := range clocks {
						clocks[i] = newFailoverClock()
						f.SetShardClock(i, clocks[i].Now)
					}

					keys, placed, victim := fleetKeys(t, f, shards, 2)
					inserts := make([]*chaos.SQLFaultPlan, shards)
					for i := range inserts {
						inserts[i] = &chaos.SQLFaultPlan{Kinds: []string{"INSERT"}}
						chaos.InstallSQL(f.ShardEnv(i).DB, inserts[i])
					}

					// Kill the victim mid-burst: the crash fires during
					// its second instance's loop.
					plan := &chaos.CrashPlan{Point: point, Activity: target.activity, AtEffect: items + 2}
					chaos.Crash(f.ShardPrimary(victim).Rec, plan)

					ctx := context.Background()
					for _, key := range keys {
						if err := f.Submit(ctx, key); err != nil {
							t.Fatalf("submit %s: %v", key, err)
						}
					}

					// Wait for the victim's process death to be recorded.
					deadline := time.Now().Add(20 * time.Second)
					for !(plan.Fired() && f.ShardDead(victim)) {
						if time.Now().After(deadline) {
							t.Fatalf("victim shard %d never died (fired=%v dead=%v)", victim, plan.Fired(), f.ShardDead(victim))
						}
						time.Sleep(time.Millisecond)
					}

					// Submissions for the dead shard keep flowing: they
					// queue behind the failover and must complete on the
					// home shard, not error.
					late := victimKeysAfter(f, victim, len(keys), 2)
					if len(late) != 2 {
						t.Fatalf("found %d late victim keys, want 2", len(late))
					}
					for _, key := range late {
						if err := f.Submit(ctx, key); err != nil {
							t.Fatalf("late submit %s: %v", key, err)
						}
					}
					placed[victim] += len(late)

					// The victim's TTL lapses; its own guard self-fences
					// even before the supervisor reacts.
					clocks[victim].Advance(5 * time.Second)
					if err := f.ShardPrimary(victim).Rec.Deploy("zombie-before-takeover"); !journal.IsFenced(err) {
						t.Fatalf("dead primary append: err = %v, want ErrFenced", err)
					}

					// Drive the health state machine: first sweep turns
					// the victim Suspect, second starts the failover and
					// promotes the standby inline.
					f.Super.CheckOnce()
					if got := f.Health.State(victim); got != shard.Suspect {
						t.Fatalf("after first sweep: victim is %s, want Suspect", got)
					}
					f.Super.CheckOnce()
					if got := f.Health.State(victim); got != shard.ServingOnStandby {
						t.Fatalf("after second sweep: victim is %s, want ServingOnStandby", got)
					}
					if n := f.ShardTakeovers(victim); n != 1 {
						t.Fatalf("victim took over %d times, want 1", n)
					}

					rep := f.Drain()

					// Fleet-wide conservation.
					total := int64(len(keys) + len(late))
					if rep.Submitted != total {
						t.Fatalf("report says %d submitted, fleet saw %d", rep.Submitted, total)
					}
					if rep.Completed+rep.Failed+rep.Shed != rep.Submitted {
						t.Fatalf("conservation violated: completed %d + failed %d + shed %d != submitted %d",
							rep.Completed, rep.Failed, rep.Shed, rep.Submitted)
					}
					if rep.Shed != 0 {
						t.Fatalf("fleet shed %d instances with generous queues", rep.Shed)
					}
					if rep.Failed != 1 {
						t.Fatalf("fleet failed %d jobs, want exactly the crashed one", rep.Failed)
					}
					if rep.PerShard[victim].Failed != 1 {
						t.Fatalf("victim pool failed %d jobs, want 1", rep.PerShard[victim].Failed)
					}

					// Per-shard convergence: each shard holds exactly its
					// own placements' effects — the crashed instance and
					// the buffered late ones complete through the promoted
					// standby; nothing leaks onto a sibling shard.
					for i := 0; i < shards; i++ {
						env := f.ShardEnv(i)
						wantRows := repeatRows(want, placed[i])
						if got := confirmationRows(t, env); !sameRows(got, wantRows) {
							t.Fatalf("shard %d confirmations diverge (placed %d):\n got %v\nwant %v", i, placed[i], got, wantRows)
						}
						burstLedgerMatches(t, env, want, placed[i])
						if got, wantN := inserts[i].Seen(), placed[i]*items; got != wantN {
							t.Fatalf("shard %d: %d INSERT executions, want %d (memoized replay must not re-run SQL)", i, got, wantN)
						}
						if entry.crash.useBus {
							if got := env.Bus.Attempts(); got != int64(placed[i]*items) {
								t.Fatalf("shard %d: %d supplier invocations, want %d", i, got, placed[i]*items)
							}
						}
						if n := int64(rep.Router.Placed[i]); n != int64(placed[i]) {
							t.Fatalf("router placed %d on shard %d, expected %d", n, i, placed[i])
						}
					}

					// Healthy shards never left Serving.
					for i := 0; i < shards; i++ {
						if i == victim {
							continue
						}
						if got := f.Health.State(i); got != shard.Serving {
							t.Fatalf("healthy shard %d ended %s", i, got)
						}
					}

					// The zombie stays fenced after the takeover (epoch
					// advance, not just expiry), the latch is surfaced as
					// a shard-level event, and the promoted recorder is
					// live with no residual in-flight work.
					pri := f.ShardPrimary(victim)
					if err := pri.Rec.Deploy("zombie-after-takeover"); !journal.IsFenced(err) {
						t.Fatalf("zombie append after takeover: err = %v, want ErrFenced", err)
					}
					if pri.Rec.FencedWrites() < 2 {
						t.Fatalf("FencedWrites = %d, want >= 2", pri.Rec.FencedWrites())
					}
					if n := f.Health.FencedCount(victim); n < 1 {
						t.Fatalf("no fencing latch surfaced as a shard event (count %d)", n)
					}
					rec := f.ShardRecorder(victim)
					if rec.Epoch() < 2 {
						t.Fatalf("promoted recorder epoch = %d, want >= 2", rec.Epoch())
					}
					if err := rec.Deploy("post-takeover"); err != nil {
						t.Fatalf("promoted recorder append: %v", err)
					}
					if n := len(rec.InFlight()); n != 0 {
						t.Fatalf("victim journal still holds %d in-flight instances", n)
					}
				})
			}
		}
	}
}

// TestFleetSelfDriving exercises the background path the benchmark
// uses: real heartbeats keep every lease fresh, real Follow loops keep
// the standbys warm, and the supervisor loop detects a mid-burst
// primary death and promotes without any test choreography. The
// failover here waits out a real TTL (the dead primary's last renewal
// is still live when the supervisor reacts), covering the
// ErrLeaseHeld retry in the takeover path.
func TestFleetSelfDriving(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	ttl := 200 * time.Millisecond
	f, err := StartFleet(FleetConfig{
		Shards:       2,
		Workers:      1,
		QueueBound:   64,
		TTL:          ttl,
		Heartbeat:    ttl / 5,
		CheckEvery:   ttl / 5,
		FailoverWait: 30 * time.Second,
		Workload:     w,
		Dir:          t.TempDir(),
		Stack:        FleetStackBIS(),
	})
	if err != nil {
		t.Fatalf("start fleet: %v", err)
	}
	defer f.Close()

	want := baselineRows(t, w, func(env *Environment) error { return env.RunFigure4BIS() })
	items := len(want)
	keys, placed, victim := fleetKeys(t, f, 2, 2)
	plan := &chaos.CrashPlan{Point: journal.CrashAfterJournalBeforeEffect, Activity: "invoke", AtEffect: items + 2}
	chaos.Crash(f.ShardPrimary(victim).Rec, plan)

	ctx := context.Background()
	for _, key := range keys {
		if err := f.Submit(ctx, key); err != nil {
			t.Fatalf("submit %s: %v", key, err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for f.ShardTakeovers(victim) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never promoted the victim (state %s, fired %v)", f.Health.State(victim), plan.Fired())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Post-takeover submissions run on the promoted shard.
	late := victimKeysAfter(f, victim, len(keys), 2)
	for _, key := range late {
		if err := f.Submit(ctx, key); err != nil {
			t.Fatalf("late submit %s: %v", key, err)
		}
	}
	placed[victim] += len(late)

	rep := f.Drain()
	if rep.Completed+rep.Failed+rep.Shed != rep.Submitted {
		t.Fatalf("conservation violated: %+v", rep)
	}
	if rep.Takeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", rep.Takeovers)
	}
	for i := 0; i < 2; i++ {
		wantRows := repeatRows(want, placed[i])
		if got := confirmationRows(t, f.ShardEnv(i)); !sameRows(got, wantRows) {
			t.Fatalf("shard %d confirmations diverge (placed %d):\n got %v\nwant %v", i, placed[i], got, wantRows)
		}
	}
	if got := f.Health.State(victim); got != shard.ServingOnStandby {
		t.Fatalf("victim ended %s, want ServingOnStandby", got)
	}
}

// TestFleetHotShardIsolation: per-shard admission front doors — a shard
// slowed to a crawl sheds its own overflow under a Shed policy while
// its sibling, fed through a separate queue, completes everything.
func TestFleetHotShardIsolation(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	const bound = 8
	f, err := StartFleet(FleetConfig{
		Shards:     2,
		Workers:    1,
		QueueBound: bound,
		Policy:     admit.Shed,
		TTL:        time.Second,
		Workload:   w,
		Dir:        t.TempDir(),
		Stack:      FleetStackBIS(),
	})
	if err != nil {
		t.Fatalf("start fleet: %v", err)
	}
	defer f.Close()

	hot := f.Router.Place("order#0")
	cold := 1 - hot
	// 2×bound submissions for the hot shard guarantee overflow (at most
	// 1 running + bound queued are admitted); the cold shard gets fewer
	// keys than its queue is deep, so it can never shed regardless of
	// timing — that asymmetry is the isolation claim.
	hotKeys := victimKeysAfter(f, hot, 0, 2*bound)
	coldKeys := victimKeysAfter(f, cold, 0, bound-2)
	// Slow the hot shard's supplier bus so its queue actually backs up.
	f.ShardEnv(hot).Bus.SetLatency(15 * time.Millisecond)

	ctx := context.Background()
	for _, key := range hotKeys {
		if err := f.Submit(ctx, key); err != nil && admit.ShedReason(err) == "" {
			t.Fatalf("hot submit %s: %v", key, err)
		}
	}
	for _, key := range coldKeys {
		if err := f.Submit(ctx, key); err != nil {
			t.Fatalf("cold submit %s refused while sibling is hot: %v", key, err)
		}
	}

	rep := f.Drain()
	if rep.Completed+rep.Failed+rep.Shed != rep.Submitted {
		t.Fatalf("conservation violated: %+v", rep)
	}
	hotRep, coldRep := rep.PerShard[hot], rep.PerShard[cold]
	if hotRep.Shed == 0 {
		t.Fatalf("hot shard shed nothing across %d submissions: %+v", len(hotKeys), hotRep)
	}
	if coldRep.Shed != 0 || coldRep.Completed != int64(len(coldKeys)) {
		t.Fatalf("cold shard was affected by its hot sibling: %+v (submitted %d)", coldRep, len(coldKeys))
	}
}
