// Datasync demonstrates the internal-data pattern chain on the Workflow
// Foundation stack end to end: Set Retrieval (DataAdapter.Fill into a
// disconnected DataSet), Sequential and Random Set Access, Tuple IUD with
// row-state tracking, and Synchronization (DataAdapter.Update generating
// INSERT/UPDATE/DELETE back to the source).
package main

import (
	"fmt"
	"log"

	"wfsql/internal/dataset"
	"wfsql/internal/mswf"
	"wfsql/internal/sqldb"
)

func main() {
	db := sqldb.Open("inventory")
	db.MustExec("CREATE TABLE Items (ItemID VARCHAR PRIMARY KEY, Stock INTEGER NOT NULL)")
	db.MustExec("INSERT INTO Items VALUES ('bolt', 120), ('nut', 80), ('screw', 45), ('washer', 12)")

	rt := mswf.NewRuntime()
	rt.RegisterDatabase("inventory", mswf.SQLServer, db)
	conn := "Provider=SqlServer;Data Source=inventory"

	wf := mswf.NewSequence("main",
		// Set Retrieval: materialize into a disconnected cache.
		mswf.NewSQLDatabase("fill", conn, "SELECT ItemID, Stock FROM Items ORDER BY ItemID").
			Into("cache").Keys("ItemID"),

		mswf.NewCode("editCache", func(c *mswf.Context) error {
			v, _ := c.Get("cache")
			tab := v.(*dataset.DataSet).Table("Result")

			// Sequential access.
			fmt.Println("cache before edits:")
			for _, row := range tab.Rows() {
				fmt.Printf("  %-8s stock=%-4s state=%s\n",
					row.MustGet("ItemID").S, row.MustGet("Stock").String(), row.State())
			}

			// Random access + tuple update.
			bolt, _ := tab.Find(sqldb.Str("bolt"))
			bolt.Set("Stock", sqldb.Int(100))

			// Tuple insert and delete.
			tab.AddRow(sqldb.Str("rivet"), sqldb.Int(500))
			washer, _ := tab.Find(sqldb.Str("washer"))
			washer.Delete()

			fmt.Println("cache after edits (change tracking):")
			for _, row := range tab.AllRows() {
				fmt.Printf("  %-8s stock=%-4s state=%s\n",
					row.MustGet("ItemID").S, row.MustGet("Stock").String(), row.State())
			}
			return nil
		}),

		// Synchronization: one transactional Update pushes all changes.
		mswf.NewCode("sync", func(c *mswf.Context) error {
			v, _ := c.Get("cache")
			adapter, err := mswf.NewDataAdapter(c, conn,
				"SELECT ItemID, Stock FROM Items", "Items", "ItemID")
			if err != nil {
				return err
			}
			n, err := adapter.Update(v.(*dataset.DataSet), "Result")
			if err != nil {
				return err
			}
			fmt.Printf("synchronized %d row(s) back to the source\n", n)
			return nil
		}),
	)

	if _, err := rt.Run(wf, nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("source table after synchronization:")
	fmt.Print(db.MustExec("SELECT ItemID, Stock FROM Items ORDER BY ItemID"))
}
