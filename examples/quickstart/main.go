// Quickstart: open an embedded database, build a three-activity BIS-style
// process (query → retrieve set → snippet), deploy it on the BPEL engine,
// and run it.
package main

import (
	"fmt"
	"log"

	"wfsql/internal/bis"
	"wfsql/internal/engine"
	"wfsql/internal/rowset"
	"wfsql/internal/sqldb"
)

func main() {
	// 1. An embedded relational database with some data.
	db := sqldb.Open("quickstart")
	db.MustExec(`CREATE TABLE Orders (
		OrderID INTEGER PRIMARY KEY, ItemID VARCHAR NOT NULL,
		Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL)`)
	db.MustExec(`INSERT INTO Orders VALUES
		(1, 'bolt', 10, TRUE), (2, 'bolt', 5, TRUE),
		(3, 'nut', 7, FALSE), (4, 'nut', 3, TRUE)`)

	// 2. A workflow engine with the database registered as a data source.
	e := engine.New(nil)
	e.RegisterDataSource("quickstart", db)

	// 3. A BIS-style process: SQL activity fills a result set reference
	//    (data stays in the database), retrieve set materializes it into
	//    the process space, and a snippet prints the tuples.
	p := bis.NewProcess("quickstart").
		DataSourceVariable("DS", "quickstart").
		InputSetReference("SR_Orders", "Orders").
		ResultSetReference("SR_Totals").
		XMLVariable("SV_Totals", "").
		Body(engine.NewSequence("main",
			bis.NewSQL("aggregate", "DS",
				`SELECT ItemID, SUM(Quantity) AS Total FROM #SR_Orders#
				 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`).
				Into("SR_Totals"),
			bis.NewRetrieveSet("materialize", "DS", "SR_Totals", "SV_Totals"),
			bis.JavaSnippet("print", func(ctx *engine.Ctx) error {
				sv, err := ctx.Variable("SV_Totals")
				if err != nil {
					return err
				}
				for _, row := range rowset.Rows(sv.Node()) {
					fmt.Printf("approved total: %-6s %s\n",
						rowset.Field(row, "ItemID"), rowset.Field(row, "Total"))
				}
				return nil
			}),
		)).
		Build()

	// 4. Deploy and run.
	d, err := e.Deploy(p)
	if err != nil {
		log.Fatal(err)
	}
	in, err := d.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %d finished: %s\n", in.ID, in.State())
}
