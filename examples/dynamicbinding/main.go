// Dynamicbinding demonstrates the capability the paper singles out as
// IBM-specific in Table I: dynamic binding of data sources. The same
// deployed process runs first against a test database, is then rebound at
// runtime to the production database — without redeployment — and the
// effects land in the right environment each time.
package main

import (
	"fmt"
	"log"

	"wfsql/internal/bis"
	"wfsql/internal/engine"
	"wfsql/internal/sqldb"
)

func main() {
	mkdb := func(name string, seedRows int) *sqldb.DB {
		db := sqldb.Open(name)
		db.MustExec("CREATE TABLE Orders (OrderID INTEGER PRIMARY KEY, Quantity INTEGER)")
		for i := 1; i <= seedRows; i++ {
			db.MustExec("INSERT INTO Orders VALUES (?, ?)", sqldb.Int(int64(i)), sqldb.Int(int64(i*10)))
		}
		db.MustExec("CREATE TABLE Audit (total INTEGER)")
		return db
	}
	testDB := mkdb("testenv", 2)
	prodDB := mkdb("prodenv", 5)

	e := engine.New(nil)
	e.RegisterDataSource("testenv", testDB)
	e.RegisterDataSource("prodenv", prodDB)

	// One process, deployed once. The environment it talks to is decided
	// by the data source variable at run time.
	p := bis.NewProcess("audit").
		DataSourceVariable("DS", "testenv").
		Variable("target", "testenv").
		Body(engine.NewSequence("main",
			bis.JavaSnippet("bind", func(ctx *engine.Ctx) error {
				target := ctx.Inst.MustVariable("target").String()
				if target == "testenv" {
					return nil // keep the deploy-time binding
				}
				return bis.RebindDataSource(ctx, "DS", target)
			}),
			bis.NewSQL("audit", "DS",
				"INSERT INTO Audit SELECT SUM(Quantity) FROM Orders"),
		)).
		Build()
	d, err := e.Deploy(p)
	if err != nil {
		log.Fatal(err)
	}

	for _, target := range []string{"testenv", "prodenv"} {
		if _, err := d.Run(map[string]string{"target": target}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("test environment audit:")
	fmt.Print(testDB.MustExec("SELECT * FROM Audit"))
	fmt.Println("production environment audit:")
	fmt.Print(prodDB.MustExec("SELECT * FROM Audit"))
	fmt.Println("same deployment, two environments — no redeploy ✔")
}
