// Orderprocessing runs the paper's running example — aggregate approved
// orders per item type, order each from a supplier, record the
// confirmations — on all three product stacks (Figures 4, 6, and 8) over
// the same workload, and verifies that they produce identical external
// effects.
package main

import (
	"fmt"
	"log"
	"strings"

	"wfsql"
)

func main() {
	w := wfsql.Workload{Orders: 30, Items: 5, ApprovalPercent: 60, Seed: 7}

	stacks := []struct {
		name string
		run  func(env *wfsql.Environment) error
	}{
		{"IBM BIS (Figure 4)", func(env *wfsql.Environment) error { return env.RunFigure4BIS() }},
		{"Microsoft WF (Figure 6)", func(env *wfsql.Environment) error { return env.RunFigure6WF() }},
		{"Oracle SOA Suite (Figure 8)", func(env *wfsql.Environment) error { return env.RunFigure8Oracle() }},
	}

	var reference string
	for _, s := range stacks {
		env := wfsql.NewEnvironment(w)
		if err := s.run(env); err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		res := env.DB.MustExec(
			"SELECT ItemID, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemID")
		fmt.Printf("=== %s ===\n%s\n", s.name, res)

		var rows []string
		for _, row := range res.Rows {
			rows = append(rows, fmt.Sprintf("%s|%s|%s", row[0], row[1], row[2]))
		}
		effects := strings.Join(rows, "\n")
		if reference == "" {
			reference = effects
		} else if effects != reference {
			log.Fatalf("%s produced different effects than the first stack", s.name)
		}
	}
	fmt.Println("all three stacks produced identical order confirmations ✔")
}
