// Adaptervsinline demonstrates the contrast of the paper's Figure 1: the
// same data management job executed through the *adapter technology*
// (SQL masked as a Web service on the bus; data management outside the
// process logic) versus *SQL inline support* (BIS SQL activities and set
// references; data management visible in the choreography).
//
// The observable difference the paper argues for: with inline support and
// set references, the query result stays in the data source and no
// result bytes cross into the process space, while the adapter ships the
// whole materialized result through the service interface.
package main

import (
	"fmt"
	"log"

	"wfsql"
)

func main() {
	w := wfsql.Workload{Orders: 2000, Items: 50, ApprovalPercent: 70, Seed: 3}

	// Adapter technology: invoke a SQL adapter service.
	env := wfsql.NewEnvironment(w)
	env.DB.ResetStats()
	if err := env.RunAdapterVariant(); err != nil {
		log.Fatal(err)
	}
	adapterStats := env.DB.Stats()
	adapterCalls := env.Bus.Calls()

	// SQL inline support: the same aggregation through a BIS SQL activity
	// into a result set reference (no retrieve set — the process passes
	// the reference on, as in consecutive SQL-side processing).
	env2 := wfsql.NewEnvironment(w)
	env2.DB.ResetStats()
	if err := env2.RunFigure4BISQueryOnly(); err != nil {
		log.Fatal(err)
	}
	inlineStats := env2.DB.Stats()

	fmt.Println("Figure 1 contrast — same aggregation job, two integration styles")
	fmt.Println()
	fmt.Printf("%-34s %14s %14s\n", "", "adapter", "SQL inline")
	fmt.Printf("%-34s %14d %14d\n", "result bytes into process space",
		adapterStats.BytesReturned, inlineStats.BytesReturned)
	fmt.Printf("%-34s %14d %14d\n", "service bus calls", adapterCalls, 0)
	fmt.Printf("%-34s %14d %14d\n", "statements executed at the source",
		adapterStats.Statements, inlineStats.Statements)
	fmt.Println()
	if inlineStats.BytesReturned == 0 && adapterStats.BytesReturned > 0 {
		fmt.Println("inline set references kept the result set in the data source ✔")
	}
}
