// Bpelroundtrip demonstrates the design-tool pipeline of the paper's
// Figure 3: a process model is assembled (the WebSphere Integration
// Developer role), serialized as a BPEL document with WID artifacts,
// loaded back from that document, deployed to the engine (the WebSphere
// Process Server role), and executed — proving the BPEL artifact is a
// complete description of the process.
package main

import (
	"fmt"
	"log"

	"wfsql/internal/bis"
	"wfsql/internal/bpelxml"
	"wfsql/internal/engine"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

func main() {
	// Design step: assemble the process model (declarative variant of the
	// paper's running example: the cursor uses positional XPath, so the
	// whole model serializes).
	builder := bis.NewProcess("OrderProcessing").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		InputSetReference("SR_OrderConfirmations", "OrderConfirmations").
		ResultSetReference("SR_ItemList").
		XMLVariable("SV_ItemList", "").
		Variable("CurrentItemID", "").
		Variable("CurrentQuantity", "").
		Variable("OrderConfirmation", "").
		Variable("pos", "1").
		Body(engine.NewSequence("main",
			bis.NewSQL("SQL1", "DS",
				"SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders# WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID").
				Into("SR_ItemList"),
			bis.NewRetrieveSet("retrieveSet", "DS", "SR_ItemList", "SV_ItemList"),
			engine.NewWhile("loop", engine.Cond("$pos <= count($SV_ItemList/Row)"),
				engine.NewSequence("loopBody",
					engine.NewAssign("extract").
						Copy("$SV_ItemList/Row[position() = $pos]/ItemID", "CurrentItemID").
						Copy("$SV_ItemList/Row[position() = $pos]/Quantity", "CurrentQuantity"),
					engine.NewInvoke("invoke", "OrderFromSupplier").
						In("ItemID", "$CurrentItemID").
						In("Quantity", "$CurrentQuantity").
						Out("OrderConfirmation", "OrderConfirmation"),
					bis.NewSQL("SQL2", "DS",
						"INSERT INTO #SR_OrderConfirmations# (ItemID, Quantity, Confirmation) VALUES (#CurrentItemID#, #CurrentQuantity#, #OrderConfirmation#)"),
					engine.NewAssign("advance").Copy("$pos + 1", "pos"),
				)),
		))

	// Export: the result of the design step is a description of the
	// process in BPEL.
	doc, err := bpelxml.MarshalBISProcess(builder)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== BPEL artifact (%d bytes) ===\n", len(doc))
	fmt.Println(doc[:min(len(doc), 800)] + "…")

	// Deployment step: reload the artifact and install it on the engine.
	reloaded, err := bpelxml.UnmarshalBISProcess(doc, nil)
	if err != nil {
		log.Fatal(err)
	}

	db := sqldb.Open("orderdb")
	db.MustExec(`CREATE TABLE Orders (OrderID INTEGER PRIMARY KEY,
		ItemID VARCHAR NOT NULL, Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL)`)
	db.MustExec(`INSERT INTO Orders VALUES (1, 'bolt', 10, TRUE),
		(2, 'bolt', 5, TRUE), (3, 'nut', 3, TRUE), (4, 'screw', 2, FALSE)`)
	db.MustExec("CREATE TABLE OrderConfirmations (ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR)")

	bus := wsbus.New()
	supplier := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", supplier.Handle)
	e := engine.New(bus)
	e.RegisterDataSource("orderdb", db)

	d, err := e.Deploy(reloaded.Build())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.Run(nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== effects of the reloaded process ===")
	fmt.Print(db.MustExec("SELECT * FROM OrderConfirmations ORDER BY ItemID"))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
