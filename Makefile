GO ?= go

.PHONY: all build vet test race short soak cover bench overload failover fleet mvcc plancache fuzz race-parallel race-overload race-failover race-fleet race-mvcc race-plancache ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full test suite (includes the multi-seed chaos soak).
test:
	$(GO) test ./...

# Race-enabled run of everything; the flow/variable concurrency tests and
# the chaos matrix are only meaningful with the race detector on.
race:
	$(GO) test -race ./...

# Quick signal: skips the chaos soak (guarded by testing.Short).
short:
	$(GO) test -short ./...

# Just the chaos soak, verbosely.
soak:
	$(GO) test -race -run TestChaosSoak -v .

# Coverage: run the suite with per-package profiles and print the
# summary (total and per-function for the journal/recovery layer).
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@echo "full per-function report: $(GO) tool cover -func=coverage.out"
	@echo "html report:              $(GO) tool cover -html=coverage.out"

# Benchmark the three figure stacks with observability attached: each
# figure runs serial (workers=1) and parallel (-parallel workers) through
# the instance scheduler; instances/sec, speedup, statement-cache hit
# rate, and the per-layer counter/histogram summaries land in
# BENCH_PR4.json.
bench:
	$(GO) run ./cmd/wfbench -instances 32 -parallel 8 -orders 120 -items 8 -out BENCH_PR4.json

# Goodput vs offered load: a closed-loop saturation run, then open-loop
# arrivals at 1x/2x/4x saturation — protected (Shed admission +
# per-instance deadline budget) against the unbounded baseline (Block,
# queue = burst, no budget). On-time goodput and p99 queue wait per
# point land in BENCH_PR5.json.
overload:
	$(GO) run ./cmd/wfbench -overload -orders 24 -items 3 -parallel 4 -svclat 5ms -loaddur 1500ms -out BENCH_PR5.json

# Warm-standby failover series: per stack, a journaled burst with a
# standby tailing the WAL, primary killed mid-burst, lease-fenced
# takeover, second burst as the new primary. Downtime breakdown
# (detect/catchup/takeover), replica lag at kill (records + ms), and
# goodput retention over the failover window vs the pre-crash
# steady-state rate land in BENCH_PR6.json.
failover:
	$(GO) run ./cmd/wfbench -failover -out BENCH_PR6.json

# Sharded-fleet chaos series: per stack, paired bursts over a
# self-driving fleet of lease-fenced shard primaries — one undisturbed,
# one with a seed-chosen shard primary crash-injected mid-burst
# (supervisor detects via lease staleness, promotes the shard's warm
# standby, router buffers the victim's submissions). Fleet-wide
# conservation, failover timings, and goodput retention land in
# BENCH_PR7.json.
fleet:
	$(GO) run ./cmd/wfbench -fleet -out BENCH_PR7.json

# MVCC worker series: the Figure 4/6/8 workloads at 1/2/4/8 scheduler
# workers (instances/sec + sqldb.lock_wait_ms per point, per-table
# breakdown at 8 workers, BENCH_PR4 8-worker baseline embedded), plus a
# raw-engine mixed read/write series over disjoint tables vs the same
# 8-worker load forced onto one table — the old global-write-lock
# contention floor. Lands in BENCH_PR8.json.
mvcc:
	$(GO) run ./cmd/wfbench -mvcc -instances 32 -orders 120 -items 8 -out BENCH_PR8.json

# Plan-cache series: the Figure 4/6/8 workloads at 1/8 workers, with
# the 8-worker statement-cache outcome (hit rate, evictions, the
# sqldb.stmtcache.size gauge), the parse-vs-exec time breakdown, and
# instances/sec vs the PR 8 baselines. Parse-time literal
# normalization takes all three stacks above 95% hits. Lands in
# BENCH_PR9.json.
plancache:
	$(GO) run ./cmd/wfbench -plancache -instances 32 -orders 120 -items 8 -out BENCH_PR9.json

# Fuzz smoke: a bounded run of the WAL-scanner fuzzer (recovery must
# survive arbitrary bytes). CI-friendly; raise -fuzztime manually for
# longer campaigns.
fuzz:
	$(GO) test -fuzz=FuzzScan -fuzztime=15s ./internal/journal/

# The parallel race gate: the scheduler-driven chaos/crash/parallel
# matrices under the race detector (what the race-parallel CI job runs).
race-parallel:
	$(GO) test -race -run 'TestParallel|TestChaos|TestCrash' .
	$(GO) test -race ./internal/sched/ ./internal/sqldb/ ./internal/resilience/

# The overload race gate: admission/limiter/brownout unit suites, the
# streaming pool, and the burst chaos matrix under the race detector
# (what the overload CI job runs).
race-overload:
	$(GO) test -race ./internal/admit/ ./internal/sched/
	$(GO) test -race -run 'TestOverload' .

# The failover race gate: lease/standby/replica unit suites, the tailer
# rotation races, and the failover chaos matrix (kill mid-burst at each
# crash point × 3 stacks, standby takeover, exactly-once effects) under
# the race detector (what the failover CI job runs).
race-failover:
	$(GO) test -race ./internal/replica/ ./internal/journal/
	$(GO) test -race -run 'TestFailover' .

# The fleet race gate: ring/health/router/supervisor unit suites plus
# the fleet chaos matrix (1-of-N shard primary killed mid-burst × 3
# stacks, lease-fenced per-shard takeover, fleet-wide conservation,
# hot-shard isolation) under the race detector (what the fleet CI job
# runs).
race-fleet:
	$(GO) test -race ./internal/shard/
	$(GO) test -race -run 'TestFleet' .

# The MVCC race gate: the §13 concurrency property tests (torn-scan,
# first-writer-wins, disjoint non-blocking, lock-wait attribution,
# EXPLAIN/executor agreement), the scoped cache-invalidation and
# committed-only-dump regressions, and the replica suite (primed
# bootstrap, dense CDC) under the race detector.
race-mvcc:
	$(GO) test -race -run 'TestSnapshot|TestSameRowWriters|TestAutocommitConflict|TestDisjointTable|TestExplainExecutorAgreement|TestDDLInvalidation|TestLockWaitAttributed|TestBootstrapStatePrimed|TestApplierStraddled|TestConcurrent' ./internal/sqldb/
	$(GO) test -race ./internal/replica/

# The plan-cache race gate: the §14 property tests (normalized-plan
# reuse ≡ unparameterized results, DDL invalidation of parameterized
# plans, named-vs-positional agreement, CDC round-trip, the prepared
# parse-charge protocol, the two-goroutine parse race) plus the LRU /
# invalidation suites under the race detector.
race-plancache:
	$(GO) test -race -run 'TestNormaliz|TestNamedVsPositional|TestDDLScoped|TestOrderByLiterals|TestBatchedInsert|TestUndersupplied|TestChangeStreamRoundTrip|TestPreparedParse|TestCachedParseRace|TestStmtCacheLRU|TestDDLInvalidation' ./internal/sqldb/
	$(GO) test -race ./internal/bis/ ./internal/orasoa/

# The gate: build, vet, the full race-enabled suite (soak included),
# then the WAL-scanner fuzz smoke.
ci: build vet race fuzz

clean:
	$(GO) clean ./...
	rm -f coverage.out BENCH_PR3.json BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json BENCH_PR9.json
