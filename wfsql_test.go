package wfsql

import (
	"fmt"
	"strings"
	"testing"
)

// TestRunningExampleEquivalence executes the paper's running example on
// all three product stacks against identical workloads and verifies the
// external effects are identical — the behavioural core of Figures 4, 6,
// and 8.
func TestRunningExampleEquivalence(t *testing.T) {
	w := Workload{Orders: 40, Items: 7, ApprovalPercent: 60, Seed: 42}

	type runner struct {
		name string
		run  func(env *Environment) error
	}
	runners := []runner{
		{"Figure4-BIS", func(env *Environment) error { return env.RunFigure4BIS() }},
		{"Figure6-WF", func(env *Environment) error { return env.RunFigure6WF() }},
		{"Figure8-Oracle", func(env *Environment) error { return env.RunFigure8Oracle() }},
	}

	var reference []string
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			env := NewEnvironment(w)
			if err := r.run(env); err != nil {
				t.Fatal(err)
			}
			res := env.DB.MustExec(
				"SELECT ItemID, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemID")
			var rows []string
			for _, row := range res.Rows {
				rows = append(rows, row[0].S+"|"+row[1].String()+"|"+row[2].S)
			}
			if len(rows) != env.ApprovedItemTypes() {
				t.Fatalf("%d confirmations for %d approved item types", len(rows), env.ApprovedItemTypes())
			}
			for _, row := range rows {
				if !strings.Contains(row, "CONFIRMED:") {
					t.Fatalf("unconfirmed row: %s", row)
				}
			}
			if reference == nil {
				reference = rows
				return
			}
			if strings.Join(reference, "\n") != strings.Join(rows, "\n") {
				t.Fatalf("stack produced different effects:\nwant:\n%s\ngot:\n%s",
					strings.Join(reference, "\n"), strings.Join(rows, "\n"))
			}
		})
	}
}

// TestEquivalenceAcrossSeeds sweeps workload seeds and shapes, checking
// the three stacks stay behaviourally equivalent everywhere — including
// degenerate workloads (nothing approved, everything approved, one item).
func TestEquivalenceAcrossSeeds(t *testing.T) {
	shapes := []Workload{
		{Orders: 1, Items: 1, ApprovalPercent: 100, Seed: 1},
		{Orders: 12, Items: 1, ApprovalPercent: 50, Seed: 2},
		{Orders: 25, Items: 8, ApprovalPercent: 0, Seed: 3}, // nothing approved
		{Orders: 25, Items: 8, ApprovalPercent: 100, Seed: 4},
		{Orders: 60, Items: 3, ApprovalPercent: 30, Seed: 5},
		{Orders: 60, Items: 20, ApprovalPercent: 80, Seed: 6},
	}
	for _, w := range shapes {
		w := w
		t.Run(fmt.Sprintf("orders=%d items=%d approve=%d", w.Orders, w.Items, w.ApprovalPercent), func(t *testing.T) {
			effects := func(run func(env *Environment) error) string {
				env := NewEnvironment(w)
				if err := run(env); err != nil {
					t.Fatal(err)
				}
				res := env.DB.MustExec(
					"SELECT ItemID, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemID")
				var rows []string
				for _, row := range res.Rows {
					rows = append(rows, row[0].S+"|"+row[1].String()+"|"+row[2].S)
				}
				return strings.Join(rows, "\n")
			}
			bisOut := effects(func(e *Environment) error { return e.RunFigure4BIS() })
			wfOut := effects(func(e *Environment) error { return e.RunFigure6WF() })
			oraOut := effects(func(e *Environment) error { return e.RunFigure8Oracle() })
			if bisOut != wfOut || bisOut != oraOut {
				t.Fatalf("stacks diverged:\nBIS:\n%s\nWF:\n%s\nOracle:\n%s", bisOut, wfOut, oraOut)
			}
		})
	}
}

func TestAdapterVariant(t *testing.T) {
	env := NewEnvironment(DefaultWorkload())
	if err := env.RunAdapterVariant(); err != nil {
		t.Fatal(err)
	}
	if env.Bus.Calls() == 0 {
		t.Fatal("adapter variant made no bus calls")
	}
}

func TestSeedWorkloadShape(t *testing.T) {
	w := Workload{Orders: 100, Items: 5, ApprovalPercent: 50, Seed: 7,
		PayloadColumns: 2, PayloadWidth: 16}
	env := NewEnvironment(w)
	res := env.DB.MustExec("SELECT COUNT(*) FROM Orders")
	if res.Rows[0][0].I != 100 {
		t.Fatalf("orders: %v", res.Rows[0][0])
	}
	res = env.DB.MustExec("SELECT COUNT(DISTINCT ItemID) FROM Orders")
	if res.Rows[0][0].I > 5 || res.Rows[0][0].I < 1 {
		t.Fatalf("item types: %v", res.Rows[0][0])
	}
	res = env.DB.MustExec("SELECT Payload0 FROM Orders WHERE OrderID = 1")
	if len(res.Rows[0][0].S) != 16 {
		t.Fatalf("payload width: %d", len(res.Rows[0][0].S))
	}
	// Deterministic: same seed, same data.
	env2 := NewEnvironment(w)
	a := env.DB.MustExec("SELECT SUM(Quantity) FROM Orders").Rows[0][0]
	b := env2.DB.MustExec("SELECT SUM(Quantity) FROM Orders").Rows[0][0]
	if a.I != b.I {
		t.Fatalf("non-deterministic workload: %v vs %v", a, b)
	}
}

func TestTables(t *testing.T) {
	t1 := TableI()
	if !strings.Contains(t1, "TABLE I") || !strings.Contains(t1, "BPEL") {
		t.Fatalf("Table I: %s", t1)
	}
	t2 := TableII()
	if !strings.Contains(t2, "TABLE II") || !strings.Contains(t2, "Only workarounds possible") {
		t.Fatalf("Table II: %s", t2)
	}
	text, failures := VerifyTableII()
	if len(failures) != 0 {
		t.Fatalf("conformance failures: %v", failures)
	}
	if text == "" {
		t.Fatal("empty verified table")
	}
}

func TestDefaultWorkloadFallback(t *testing.T) {
	env := NewEnvironment(Workload{})
	if env.Workload.Orders != 6 {
		t.Fatalf("default workload: %+v", env.Workload)
	}
}

func TestResetConfirmations(t *testing.T) {
	env := NewEnvironment(DefaultWorkload())
	if err := env.RunFigure6WF(); err != nil {
		t.Fatal(err)
	}
	if env.ConfirmationCount() == 0 {
		t.Fatal("no confirmations recorded")
	}
	env.ResetConfirmations()
	if env.ConfirmationCount() != 0 {
		t.Fatal("reset failed")
	}
}

// TestLargeWorkloadSoak runs the running example at a scale two orders of
// magnitude beyond the paper's six-order figure, checking exact
// aggregation totals against an independent SQL computation.
func TestLargeWorkloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	w := Workload{Orders: 5000, Items: 40, ApprovalPercent: 55, Seed: 123}
	env := NewEnvironment(w)
	if err := env.RunFigure6WF(); err != nil {
		t.Fatal(err)
	}
	// Every confirmation must equal the independently computed total
	// (joined through a view over the source data).
	env.DB.MustExec(`CREATE VIEW ApprovedTotals AS
		SELECT ItemID, SUM(Quantity) AS Total FROM Orders
		WHERE Approved = TRUE GROUP BY ItemID`)
	res := env.DB.MustExec(`
		SELECT c.ItemID, c.Quantity, t.Total FROM OrderConfirmations c
		JOIN ApprovedTotals t ON c.ItemID = t.ItemID`)
	if len(res.Rows) != env.ApprovedItemTypes() {
		t.Fatalf("confirmations: %d, want %d", len(res.Rows), env.ApprovedItemTypes())
	}
	for _, row := range res.Rows {
		if row[1].I != row[2].I {
			t.Fatalf("item %s: confirmed %d, actual total %d", row[0].S, row[1].I, row[2].I)
		}
	}
	if env.Supplier.Ordered("item000") == 0 {
		t.Fatal("supplier saw no orders for a common item")
	}
}
