module wfsql

go 1.22
