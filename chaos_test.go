package wfsql

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"wfsql/internal/bis"
	"wfsql/internal/chaos"
	"wfsql/internal/engine"
	"wfsql/internal/resilience"
)

// This file is the chaos matrix the resilience layer is proved with: the
// paper's running example (Figures 4, 6, 8) executed on all three product
// stacks under injected service faults, SQL faults, and latency, asserting
// that the OrderConfirmations table converges row-for-row to the fault-free
// baseline — exactly-once visible effects despite retries.

// quickPolicy is a retry policy with microsecond backoff for tests.
func quickPolicy(attempts int) *resilience.Policy {
	return resilience.NewPolicy(attempts, time.Microsecond)
}

// confirmationRows returns the OrderConfirmations content as sorted
// "ItemID|Quantity|Confirmation" strings.
func confirmationRows(t *testing.T, env *Environment) []string {
	t.Helper()
	res := env.DB.MustExec("SELECT ItemID, Quantity, Confirmation FROM OrderConfirmations")
	rows := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, fmt.Sprintf("%s|%s|%s", r[0].String(), r[1].String(), r[2].String()))
	}
	sort.Strings(rows)
	return rows
}

// baselineRows runs the given figure on a fresh, fault-free environment
// with the same workload and returns its confirmation rows.
func baselineRows(t *testing.T, w Workload, run func(env *Environment) error) []string {
	t.Helper()
	env := NewEnvironment(w)
	if err := run(env); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return confirmationRows(t, env)
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chaosWindow is the transient fault window used by the convergence tests:
// one panic, one slow-fail, two fast fails — then the dependency heals.
func chaosWindow() *chaos.FaultPlan {
	p := chaos.NewFaultPlan(7)
	p.PanicFirst = 1
	p.SlowFirst = 1
	p.Delay = time.Millisecond
	p.FailFirst = 2
	return p
}

// TestChaosTransientServiceFaultsConverge injects a transient fault window
// into the supplier service and checks that each product stack, with a
// retry policy on the invoke, produces exactly the fault-free baseline.
func TestChaosTransientServiceFaultsConverge(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	cfg := ResilienceConfig{Invoke: quickPolicy(8)}

	t.Run("BIS", func(t *testing.T) {
		want := baselineRows(t, w, func(env *Environment) error { return env.RunFigure4BIS() })
		env := NewEnvironment(w)
		plan := chaosWindow()
		if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
			t.Fatal(err)
		}
		if err := env.RunFigure4BISResilient(cfg); err != nil {
			t.Fatalf("resilient run under chaos: %v", err)
		}
		if got := confirmationRows(t, env); !sameRows(got, want) {
			t.Fatalf("rows diverged from baseline:\n got %v\nwant %v", got, want)
		}
		if plan.Injected() == 0 {
			t.Fatal("fault plan injected nothing — test proved nothing")
		}
		if env.Engine.DeadLetters.Len() != 0 {
			t.Fatalf("transient window should not dead-letter, got %d", env.Engine.DeadLetters.Len())
		}
	})

	t.Run("WF", func(t *testing.T) {
		want := baselineRows(t, w, func(env *Environment) error { return env.RunFigure6WF() })
		env := NewEnvironment(w)
		plan := chaosWindow()
		env.Runtime.RegisterService("OrderFromSupplier", plan.WrapService(
			func(req map[string]string) (map[string]string, error) {
				return env.Supplier.Handle(req)
			}))
		if err := env.RunFigure6WFResilient(cfg); err != nil {
			t.Fatalf("resilient run under chaos: %v", err)
		}
		if got := confirmationRows(t, env); !sameRows(got, want) {
			t.Fatalf("rows diverged from baseline:\n got %v\nwant %v", got, want)
		}
		if plan.Injected() == 0 {
			t.Fatal("fault plan injected nothing")
		}
	})

	t.Run("Oracle", func(t *testing.T) {
		want := baselineRows(t, w, func(env *Environment) error { return env.RunFigure8Oracle() })
		env := NewEnvironment(w)
		plan := chaosWindow()
		if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
			t.Fatal(err)
		}
		if err := env.RunFigure8OracleResilient(cfg); err != nil {
			t.Fatalf("resilient run under chaos: %v", err)
		}
		if got := confirmationRows(t, env); !sameRows(got, want) {
			t.Fatalf("rows diverged from baseline:\n got %v\nwant %v", got, want)
		}
		if plan.Injected() == 0 {
			t.Fatal("fault plan injected nothing")
		}
	})
}

// TestChaosSQLFaultLongRunningRetries injects a transient fault into the
// SQL statement stream. In long-running processes every statement
// autocommits, so a per-statement retry policy heals the fault and the
// table still converges to the baseline.
func TestChaosSQLFaultLongRunningRetries(t *testing.T) {
	w := Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3}
	cfg := ResilienceConfig{SQL: quickPolicy(4)}

	cases := []struct {
		name     string
		baseline func(env *Environment) error
		run      func(env *Environment) error
	}{
		{"BIS",
			func(env *Environment) error { return env.RunFigure4BIS() },
			func(env *Environment) error { return env.RunFigure4BISResilient(cfg) }},
		{"WF",
			func(env *Environment) error { return env.RunFigure6WF() },
			func(env *Environment) error { return env.RunFigure6WFResilient(cfg) }},
		{"Oracle",
			func(env *Environment) error { return env.RunFigure8Oracle() },
			func(env *Environment) error { return env.RunFigure8OracleResilient(cfg) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := baselineRows(t, w, tc.baseline)
			env := NewEnvironment(w)
			plan := &chaos.SQLFaultPlan{Kinds: []string{"INSERT"}, FailNth: []int{1, 3}}
			chaos.InstallSQL(env.DB, plan)
			defer chaos.InstallSQL(env.DB, nil)
			if err := tc.run(env); err != nil {
				t.Fatalf("resilient run under SQL chaos: %v", err)
			}
			if got := confirmationRows(t, env); !sameRows(got, want) {
				t.Fatalf("rows diverged from baseline:\n got %v\nwant %v", got, want)
			}
			if plan.Injected() != 2 {
				t.Fatalf("injected = %d, want 2", plan.Injected())
			}
		})
	}
}

// TestChaosSQLFaultShortRunningAllOrNothing is the transaction-mode
// counterpart: in a short-running process the statements share one
// transaction, so the retry policy is suppressed (a "retry-suppressed"
// trace event records the decision), the fault propagates, and the
// rollback leaves zero confirmations — all-or-nothing.
func TestChaosSQLFaultShortRunningAllOrNothing(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 18, Items: 4, ApprovalPercent: 100, Seed: 3})
	p := env.BuildFigure4BISResilient(ResilienceConfig{SQL: quickPolicy(4)})
	p.Mode = engine.ShortRunning

	plan := &chaos.SQLFaultPlan{Kinds: []string{"INSERT"}, FailNth: []int{2}, Permanent: true}
	chaos.InstallSQL(env.DB, plan)
	defer chaos.InstallSQL(env.DB, nil)

	d, err := env.Engine.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Run(nil)
	if err == nil {
		t.Fatal("short-running process should fault on the injected SQL error")
	}
	if n := env.ConfirmationCount(); n != 0 {
		t.Fatalf("rollback leaked %d confirmations (first insert committed despite fault)", n)
	}
	suppressed := false
	for _, ev := range inst.Trace() {
		if ev.Kind == "retry-suppressed" {
			suppressed = true
			break
		}
	}
	if !suppressed {
		t.Fatal("expected a retry-suppressed trace event in short-running mode")
	}
}

// TestChaosLatencyPerAttemptTimeout: a hung supplier (slow-fail window) is
// abandoned by the per-attempt timeout and the retry converges without
// waiting out the injected delay.
func TestChaosLatencyPerAttemptTimeout(t *testing.T) {
	w := Workload{Orders: 12, Items: 3, ApprovalPercent: 100, Seed: 1}
	want := baselineRows(t, w, func(env *Environment) error { return env.RunFigure4BIS() })

	env := NewEnvironment(w)
	plan := chaos.NewFaultPlan(1)
	plan.SlowFirst = 2
	plan.Delay = 30 * time.Second // would stall the test without a timeout
	if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
		t.Fatal(err)
	}
	pol := quickPolicy(5)
	pol.PerAttemptTimeout = 5 * time.Millisecond

	start := time.Now()
	if err := env.RunFigure4BISResilient(ResilienceConfig{Invoke: pol}); err != nil {
		t.Fatalf("resilient run under latency chaos: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("per-attempt timeout did not cut the injected delay (took %v)", elapsed)
	}
	if got := confirmationRows(t, env); !sameRows(got, want) {
		t.Fatalf("rows diverged from baseline:\n got %v\nwant %v", got, want)
	}
}

// TestChaosPermanentFaultDeadLettersAndDegrades targets one item type with
// a permanent fault: the process completes in a degraded state (the
// confirmation records DEADLETTERED:<item>), every other item confirms
// normally, and the engine's dead-letter log holds exactly the failed key.
func TestChaosPermanentFaultDeadLettersAndDegrades(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 12, Items: 3, ApprovalPercent: 100, Seed: 1})
	const victim = "item001"
	plan := chaos.NewFaultPlan(1)
	plan.FailFirst = 1 << 30
	plan.Permanent = true
	plan.Match = func(req map[string]string) bool { return req["ItemID"] == victim }
	if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
		t.Fatal(err)
	}

	cfg := ResilienceConfig{Invoke: quickPolicy(3), DeadLetterAbsorb: true}
	if err := env.RunFigure4BISResilient(cfg); err != nil {
		t.Fatalf("degraded completion expected, got fault: %v", err)
	}
	if n := env.ConfirmationCount(); n != env.ApprovedItemTypes() {
		t.Fatalf("confirmations = %d, want %d (degraded rows included)", n, env.ApprovedItemTypes())
	}
	res := env.DB.MustExec("SELECT ItemID, Confirmation FROM OrderConfirmations ORDER BY ItemID")
	for _, row := range res.Rows {
		item, conf := row[0].S, row[1].S
		if item == victim {
			if conf != "DEADLETTERED:"+victim {
				t.Fatalf("victim row confirmation %q", conf)
			}
		} else if !strings.HasPrefix(conf, "CONFIRMED:") {
			t.Fatalf("healthy item %s has confirmation %q", item, conf)
		}
	}
	if keys := env.Engine.DeadLetters.Keys(); len(keys) != 1 || keys[0] != victim {
		t.Fatalf("dead-letter keys = %v, want [%s]", keys, victim)
	}
	dl := env.Engine.DeadLetters.Entries()[0]
	if dl.Reason != resilience.ReasonPermanent {
		t.Fatalf("dead letter reason %q, want %q (permanent faults stop retrying early)", dl.Reason, resilience.ReasonPermanent)
	}
	if dl.Attempts != 1 {
		t.Fatalf("permanent fault burned %d attempts, want 1", dl.Attempts)
	}
}

// TestChaosBreakerOpensUnderPersistentFailure: with the supplier down hard,
// the circuit breaker opens after its failure threshold and subsequent
// invokes are refused without touching the bus; dead-lettering absorbs the
// failures so the process still completes (degraded).
func TestChaosBreakerOpensUnderPersistentFailure(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 30, Items: 6, ApprovalPercent: 100, Seed: 9})
	plan := chaos.NewFaultPlan(1)
	plan.FailFirst = 1 << 30 // never heals
	if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
		t.Fatal(err)
	}

	br := resilience.NewBreaker(3, time.Hour) // opens after 3 consecutive failures, never half-opens in-test
	cfg := ResilienceConfig{Invoke: quickPolicy(2), Breaker: br, DeadLetterAbsorb: true}
	d, err := env.Engine.Deploy(env.BuildFigure4BISResilient(cfg))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Run(nil)
	if err != nil {
		t.Fatalf("absorbed failures should not fault the process: %v", err)
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state %v, want open", br.State())
	}
	// Every item dead-lettered, every degraded row recorded.
	if got, want := env.Engine.DeadLetters.Len(), env.ApprovedItemTypes(); got != want {
		t.Fatalf("dead letters = %d, want %d", got, want)
	}
	if n := env.ConfirmationCount(); n != env.ApprovedItemTypes() {
		t.Fatalf("confirmations = %d, want %d", n, env.ApprovedItemTypes())
	}
	// The breaker cut the call volume: once open, attempts are refused
	// before reaching the bus.
	maxAttempts := int64(env.ApprovedItemTypes() * 2)
	if env.Bus.Attempts() >= maxAttempts {
		t.Fatalf("bus attempts = %d, want < %d (breaker should refuse calls once open)", env.Bus.Attempts(), maxAttempts)
	}
	// The breaker transition surfaced on the monitoring trace.
	sawBreaker := false
	for _, ev := range inst.Trace() {
		if ev.Kind == "breaker" && strings.Contains(ev.Detail, "open") {
			sawBreaker = true
			break
		}
	}
	if !sawBreaker {
		t.Fatal("expected a breaker trace event recording the open transition")
	}
}

// TestChaosPanicDoesNotKillEngine: a panicking service handler is recovered
// into a transient fault; without a retry policy the process faults cleanly
// (state faulted, fault recorded) instead of crashing the engine.
func TestChaosPanicDoesNotKillEngine(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 12, Items: 3, ApprovalPercent: 100, Seed: 1})
	plan := chaos.NewFaultPlan(1)
	plan.PanicFirst = 1
	if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
		t.Fatal(err)
	}
	d, err := env.Engine.Deploy(env.BuildFigure4BIS())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Run(nil)
	if err == nil {
		t.Fatal("unretried panic should fault the instance")
	}
	if inst.State() != engine.StateFaulted {
		t.Fatalf("instance state %v, want faulted", inst.State())
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("fault should carry the recovered panic: %v", err)
	}
	if env.Bus.Panics() != 1 {
		t.Fatalf("bus panic counter = %d, want 1", env.Bus.Panics())
	}
}

// TestChaosSoak runs the three stacks repeatedly under seeded random
// service fault rates, asserting convergence every time. Skipped with
// -short; the ci target runs it.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	w := Workload{Orders: 24, Items: 5, ApprovalPercent: 100, Seed: 11}
	cfg := ResilienceConfig{Invoke: quickPolicy(10), SQL: quickPolicy(10)}

	baseBIS := baselineRows(t, w, func(env *Environment) error { return env.RunFigure4BIS() })
	baseWF := baselineRows(t, w, func(env *Environment) error { return env.RunFigure6WF() })
	baseORA := baselineRows(t, w, func(env *Environment) error { return env.RunFigure8Oracle() })

	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// BIS and Oracle share the bus-level injector.
			for _, tc := range []struct {
				name string
				want []string
				run  func(env *Environment) error
			}{
				{"BIS", baseBIS, func(env *Environment) error { return env.RunFigure4BISResilient(cfg) }},
				{"Oracle", baseORA, func(env *Environment) error { return env.RunFigure8OracleResilient(cfg) }},
			} {
				env := NewEnvironment(w)
				plan := chaos.NewFaultPlan(seed)
				plan.FailRate = 0.3
				if err := chaos.Inject(env.Bus, "OrderFromSupplier", plan); err != nil {
					t.Fatal(err)
				}
				if err := tc.run(env); err != nil {
					t.Fatalf("%s seed %d: %v", tc.name, seed, err)
				}
				if got := confirmationRows(t, env); !sameRows(got, tc.want) {
					t.Fatalf("%s seed %d diverged:\n got %v\nwant %v", tc.name, seed, got, tc.want)
				}
			}
			// WF wraps its registered service directly.
			env := NewEnvironment(w)
			plan := chaos.NewFaultPlan(seed)
			plan.FailRate = 0.3
			env.Runtime.RegisterService("OrderFromSupplier", plan.WrapService(
				func(req map[string]string) (map[string]string, error) {
					return env.Supplier.Handle(req)
				}))
			if err := env.RunFigure6WFResilient(cfg); err != nil {
				t.Fatalf("WF seed %d: %v", seed, err)
			}
			if got := confirmationRows(t, env); !sameRows(got, baseWF) {
				t.Fatalf("WF seed %d diverged:\n got %v\nwant %v", seed, got, baseWF)
			}
		})
	}
}

// TestAtomicSequenceRetryHealsCommitFault: the unit-of-work retry on an
// atomic SQL sequence rolls back the failed attempt and replays the whole
// sequence, leaving exactly one committed copy — the transaction-boundary
// recovery that per-statement retries defer to.
func TestAtomicSequenceRetryHealsCommitFault(t *testing.T) {
	env := NewEnvironment(Workload{Orders: 12, Items: 3, ApprovalPercent: 100, Seed: 1})
	plan := &chaos.SQLFaultPlan{FailCommits: 1}
	chaos.InstallSQL(env.DB, plan)
	defer chaos.InstallSQL(env.DB, nil)

	seq := bis.NewAtomicSequence("unitOfWork",
		bis.NewSQL("ins1", "DS", `INSERT INTO #SR_OrderConfirmations# (ItemID, Quantity, Confirmation) VALUES ('a', 1, 'x')`),
		bis.NewSQL("ins2", "DS", `INSERT INTO #SR_OrderConfirmations# (ItemID, Quantity, Confirmation) VALUES ('b', 2, 'y')`),
	).WithRetry(quickPolicy(3))

	p := bis.NewProcess("AtomicRetry").
		DataSourceVariable("DS", DataSourceName).
		InputSetReference("SR_OrderConfirmations", "OrderConfirmations").
		Body(seq).
		Build()
	d, err := env.Engine.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(nil); err != nil {
		t.Fatalf("retried unit of work should commit: %v", err)
	}
	if n := env.ConfirmationCount(); n != 2 {
		t.Fatalf("confirmations = %d, want 2 (one committed copy, no replay duplicates)", n)
	}
	if plan.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", plan.Injected())
	}
}
