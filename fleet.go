package wfsql

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"wfsql/internal/admit"
	"wfsql/internal/engine"
	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/replica"
	"wfsql/internal/sched"
	"wfsql/internal/shard"
)

// This file is the sharded-fleet facade: N independent lease-fenced
// primaries (PR 6's StartPrimary, one journal directory, lease, and
// sqldb namespace each), each with its own warm standby, fronted by
// internal/shard's consistent-hash router and per-shard admission
// pools. The fleet supervisor probes every shard; a shard whose process
// died or whose lease went stale walks Serving → Suspect → FailingOver,
// its standby is promoted with the full takeover sequence, and the
// router buffers that shard's submissions across the window instead of
// erroring. The PR 5 conservation invariant extends fleet-wide:
// Completed + Failed + Shed == Submitted across every shard plus the
// router's own refusals.

// FleetStack adapts one product stack to the fleet: Prepare deploys the
// stack's process on an environment and returns a single-instance run
// closure plus a recovery closure that resumes the in-flight instances
// recorded in a journal (against the same deployment). Prepare is
// called once per shard at startup and again on the rebuilt host at
// each takeover.
type FleetStack struct {
	Name    string
	Prepare func(env *Environment) (run func(ctx context.Context) error, recover func(rec *journal.Recorder) error, err error)
}

// FleetStackBIS runs the Figure 4 BIS process on every shard.
func FleetStackBIS() FleetStack {
	return FleetStack{
		Name: "BIS",
		Prepare: func(env *Environment) (func(ctx context.Context) error, func(rec *journal.Recorder) error, error) {
			d, err := env.Engine.Deploy(env.BuildFigure4BISResilient(ResilienceConfig{}))
			if err != nil {
				return nil, nil, err
			}
			run := func(ctx context.Context) error {
				_, err := d.RunCtx(ctx, nil)
				return err
			}
			recover := func(rec *journal.Recorder) error {
				_, err := engine.Recover(rec, map[string]*engine.Deployment{"Figure4": d})
				return err
			}
			return run, recover, nil
		},
	}
}

// FleetStackWF runs the Figure 6 WF workflow on every shard.
func FleetStackWF() FleetStack {
	return FleetStack{
		Name: "WF",
		Prepare: func(env *Environment) (func(ctx context.Context) error, func(rec *journal.Recorder) error, error) {
			root := env.BuildFigure6WFResilient(ResilienceConfig{})
			run := func(ctx context.Context) error {
				_, err := env.Runtime.RunCtx(ctx, root, map[string]any{"Index": 0})
				return err
			}
			recover := func(rec *journal.Recorder) error {
				for _, ij := range rec.InFlight() {
					if _, err := env.Runtime.Resume(root, ij); err != nil {
						return err
					}
				}
				return nil
			}
			return run, recover, nil
		},
	}
}

// FleetStackOracle runs the Figure 8 Oracle process on every shard.
func FleetStackOracle() FleetStack {
	return FleetStack{
		Name: "Oracle",
		Prepare: func(env *Environment) (func(ctx context.Context) error, func(rec *journal.Recorder) error, error) {
			p, err := env.BuildFigure8OracleResilient(ResilienceConfig{})
			if err != nil {
				return nil, nil, err
			}
			d, err := env.Engine.Deploy(p)
			if err != nil {
				return nil, nil, err
			}
			run := func(ctx context.Context) error {
				_, err := d.RunCtx(ctx, nil)
				return err
			}
			recover := func(rec *journal.Recorder) error {
				_, err := engine.Recover(rec, map[string]*engine.Deployment{"Figure8": d})
				return err
			}
			return run, recover, nil
		},
	}
}

// FleetStacks returns the three product stacks the fleet chaos matrix
// and wfbench -fleet iterate over.
func FleetStacks() []FleetStack {
	return []FleetStack{FleetStackBIS(), FleetStackWF(), FleetStackOracle()}
}

// FleetConfig parameterizes StartFleet.
type FleetConfig struct {
	// Shards is the shard count (values < 1 mean 3).
	Shards int
	// Workers is the per-shard worker count (values < 1 mean 2).
	Workers int
	// QueueBound caps each shard's admission queue (pool default: 2×Workers).
	QueueBound int
	// Policy is each shard's full-queue admission policy.
	Policy admit.Policy
	// Wait bounds TimeoutWait's patience.
	Wait time.Duration
	// TTL is each shard's lease TTL (values <= 0 use replica.DefaultTTL).
	TTL time.Duration
	// Heartbeat, when > 0, starts background lease renewal on every
	// primary and a Follow loop on every standby at this interval, and
	// is passed to takeovers as WarmStandby.HeartbeatEvery.
	// Deterministic tests leave it zero and drive clocks manually.
	Heartbeat time.Duration
	// SuspectAfter is the consecutive probe misses before Suspect
	// (values < 1 mean 1); FailAfter before failover (default
	// SuspectAfter+1).
	SuspectAfter, FailAfter int
	// CheckEvery, when > 0, runs the supervisor sweep on a background
	// goroutine at this cadence. Deterministic tests leave it zero and
	// call Fleet.Super.CheckOnce.
	CheckEvery time.Duration
	// FailoverWait bounds both the router's submission buffering and a
	// worker's wait for its shard to finish failing over (values <= 0
	// mean 5s).
	FailoverWait time.Duration
	// Reroute lets buffered submissions fall through to a ring
	// successor after FailoverWait (see shard.RouterConfig.Reroute).
	Reroute bool
	// VirtualNodes per shard on the placement ring (0 = default).
	VirtualNodes int
	// Workload seeds each shard's environment.
	Workload Workload
	// Dir is the fleet root directory holding one journal directory per
	// shard ("" = a temp directory removed on Close).
	Dir string
	// Stack is the product stack every shard runs.
	Stack FleetStack
	// Obs receives shard.*, sched.*, and admit.* metrics (nil-safe).
	Obs *obsv.Observability
}

// fleetShard is one shard's moving parts. env/run/rec/pri swap under mu
// at takeover; pool, ws, dir, and now are fixed for the fleet's life.
type fleetShard struct {
	idx  int
	dir  string
	pool *sched.Pool
	ws   *WarmStandby
	now  func() time.Time

	mu         sync.Mutex
	env        *Environment
	run        func(ctx context.Context) error
	rec        *journal.Recorder
	pri        *Primary // original primary; kept after death for zombie probing
	stopFollow func()
	holder     string
	epoch      int64
	dead       bool
	takeovers  int
}

// Fleet is a running sharded fleet. Ring, Health, Router, and Super are
// exported for tests and benchmarks that drive placement or the health
// sweep directly.
type Fleet struct {
	Ring   *shard.Ring
	Health *shard.Health
	Router *shard.Router
	Super  *shard.Supervisor

	cfg       FleetConfig
	obs       *obsv.Observability
	shards    []*fleetShard
	dir       string
	ownDir    bool
	start     time.Time
	stopSuper func()
	submitted atomic.Int64
}

// StartFleet brings up cfg.Shards independent primaries — each with its
// own journal directory, fencing lease, database, and warm standby —
// and the router/supervisor pair that fronts them. With Heartbeat and
// CheckEvery set the fleet is fully self-driving (wfbench mode); with
// both zero the caller owns time and the health sweep (test mode).
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 3
	}
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.TTL <= 0 {
		cfg.TTL = replica.DefaultTTL
	}
	if cfg.SuspectAfter < 1 {
		cfg.SuspectAfter = 1
	}
	if cfg.FailAfter <= cfg.SuspectAfter {
		cfg.FailAfter = cfg.SuspectAfter + 1
	}
	if cfg.FailoverWait <= 0 {
		cfg.FailoverWait = 5 * time.Second
	}
	if cfg.Stack.Prepare == nil {
		return nil, errors.New("wfsql: FleetConfig.Stack is required")
	}

	dir, ownDir := cfg.Dir, false
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "wfsql-fleet-")
		if err != nil {
			return nil, err
		}
		ownDir = true
	}

	f := &Fleet{cfg: cfg, obs: cfg.Obs, dir: dir, ownDir: ownDir, start: time.Now()}
	f.Ring = shard.NewRing(cfg.Shards, cfg.VirtualNodes)
	f.Health = shard.NewHealth(cfg.Shards, cfg.SuspectAfter, func(ev shard.Event) {
		m := f.obs.M()
		m.Counter("shard.events").Inc()
		m.Gauge(fmt.Sprintf("shard.state.%d", ev.Shard)).SetInt(int64(ev.To))
	})

	pools := make([]*sched.Pool, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sh := &fleetShard{idx: i, dir: filepath.Join(dir, fmt.Sprintf("shard%d", i)), now: time.Now}
		if err := os.MkdirAll(sh.dir, 0o755); err != nil {
			f.Close()
			return nil, err
		}
		env := NewEnvironment(cfg.Workload)
		pri, err := env.StartPrimary(sh.dir, fmt.Sprintf("shard%d-primary", i), cfg.TTL)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wfsql: start shard %d: %w", i, err)
		}
		run, _, err := cfg.Stack.Prepare(env)
		if err != nil {
			pri.Close()
			f.Close()
			return nil, fmt.Errorf("wfsql: prepare shard %d: %w", i, err)
		}
		ws := NewWarmStandby(sh.dir, cfg.TTL)
		ws.HeartbeatEvery = cfg.Heartbeat
		if _, err := ws.CatchUp(); err != nil {
			pri.Close()
			f.Close()
			return nil, fmt.Errorf("wfsql: warm shard %d standby: %w", i, err)
		}
		if cfg.Heartbeat > 0 {
			pri.Heartbeat(cfg.Heartbeat)
			sh.stopFollow = ws.Follow(cfg.Heartbeat)
		}
		sh.env, sh.run, sh.pri, sh.ws, sh.rec = env, run, pri, ws, pri.Rec
		sh.holder, sh.epoch = pri.State.Holder, pri.State.Epoch
		sh.pool = sched.NewPool(sched.PoolConfig{
			Workers:    cfg.Workers,
			QueueBound: cfg.QueueBound,
			Policy:     cfg.Policy,
			Wait:       cfg.Wait,
			Obs:        cfg.Obs,
		})
		pools[i] = sh.pool
		f.shards = append(f.shards, sh)
	}

	f.Router = shard.NewRouter(shard.RouterConfig{
		Ring:         f.Ring,
		Health:       f.Health,
		FailoverWait: cfg.FailoverWait,
		Reroute:      cfg.Reroute,
	}, pools)
	f.Super = shard.NewSupervisor(cfg.Shards, shard.SupervisorConfig{
		Health:    f.Health,
		Probe:     f.probe,
		Failover:  f.failoverShard,
		FailAfter: cfg.FailAfter,
		Interval:  cfg.CheckEvery,
	})
	if cfg.CheckEvery > 0 {
		f.stopSuper = f.Super.Start()
	}
	return f, nil
}

// Submit places key on its home shard (consistent hash) and offers one
// instance run to that shard's admission pool. During a failover of the
// home shard the submission is buffered or rerouted per the
// configuration; shard.ErrUnroutable means the fleet refused it (a
// fleet-level shed, accounted in the report).
func (f *Fleet) Submit(ctx context.Context, key string) error {
	f.submitted.Add(1)
	_, err := f.Router.Submit(ctx, key, func(i int) sched.CtxJob {
		return sched.CtxJob{
			Stack: f.cfg.Stack.Name,
			Name:  key,
			Class: admit.Normal,
			Run:   func(ctx context.Context) error { return f.runOn(ctx, i) },
		}
	})
	return err
}

// runOn executes one instance on shard i, waiting out an in-progress
// failover first. A crash or fencing error from the run marks the
// shard's process dead — the supervisor takes it from there.
func (f *Fleet) runOn(ctx context.Context, i int) error {
	if err := f.awaitServing(ctx, i); err != nil {
		return err
	}
	sh := f.shards[i]
	sh.mu.Lock()
	run := sh.run
	sh.mu.Unlock()
	err := run(ctx)
	if err != nil && (journal.IsCrash(err) || journal.IsFenced(err)) {
		f.shardDied(i, err)
	}
	return err
}

// awaitServing blocks while shard i's process is dead or a takeover is
// in flight, bounded by FailoverWait and ctx — queued work rides out
// the failover window instead of failing.
func (f *Fleet) awaitServing(ctx context.Context, i int) error {
	sh := f.shards[i]
	deadline := time.Now().Add(f.cfg.FailoverWait)
	for {
		st := f.Health.State(i)
		if st == shard.Down {
			return fmt.Errorf("wfsql: shard %d is down", i)
		}
		sh.mu.Lock()
		dead := sh.dead
		sh.mu.Unlock()
		if !dead && st != shard.FailingOver {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wfsql: shard %d still unavailable after %v", i, f.cfg.FailoverWait)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// shardDied marks shard i's primary process dead (first caller wins)
// and stops its heartbeat so the lease lapses. A fencing cause is
// latched as a shard-level event immediately.
func (f *Fleet) shardDied(i int, cause error) {
	sh := f.shards[i]
	sh.mu.Lock()
	already := sh.dead
	sh.dead = true
	if !already && sh.pri != nil {
		sh.pri.Pause()
	}
	sh.mu.Unlock()
	if already {
		return
	}
	f.obs.M().Counter("shard.deaths").Inc()
	if journal.IsFenced(cause) {
		f.Health.Fenced(i)
	}
}

// probe is the supervisor's liveness check for shard i: the process
// must not have died and its lease must be fresh by the shard's clock.
func (f *Fleet) probe(i int) bool {
	sh := f.shards[i]
	sh.mu.Lock()
	dead, now := sh.dead, sh.now
	sh.mu.Unlock()
	if dead {
		return false
	}
	st, err := sh.ws.Lease.Read()
	if err != nil {
		return false
	}
	return now().Sub(st.Renewed()) <= f.cfg.TTL
}

// failoverShard promotes shard i's warm standby: stop the follower,
// take over (lease-fenced — retried briefly while the dead primary's
// lease drains its TTL), re-prepare the stack on the rebuilt host,
// resume in-flight instances, and swap the shard to the new
// environment. The old primary is probed once to latch the fencing
// evidence as a shard-level event.
func (f *Fleet) failoverShard(i int) error {
	sh := f.shards[i]
	sh.mu.Lock()
	env := sh.env
	pri := sh.pri
	stopFollow := sh.stopFollow
	sh.stopFollow = nil
	if pri != nil {
		pri.Pause()
	}
	sh.mu.Unlock()
	if stopFollow != nil {
		stopFollow()
	}

	holder := fmt.Sprintf("shard%d-standby", i)
	recoverFn := func(host *Environment, rec *journal.Recorder) error {
		run, recov, err := f.cfg.Stack.Prepare(host)
		if err != nil {
			return err
		}
		if recov != nil {
			if err := recov(rec); err != nil {
				return err
			}
		}
		sh.mu.Lock()
		sh.run = run
		sh.mu.Unlock()
		return nil
	}

	var host *Environment
	var rec *journal.Recorder
	deadline := time.Now().Add(2*f.cfg.TTL + 2*time.Second)
	for {
		var err error
		host, rec, err = sh.ws.Takeover(env, holder, recoverFn)
		if err == nil {
			break
		}
		// The dead primary's last renewal may still be inside the TTL
		// when the supervisor reacts to the process death; promotion is
		// refused until it lapses.
		if !errors.Is(err, replica.ErrLeaseHeld) || time.Now().After(deadline) {
			return err
		}
		time.Sleep(f.cfg.TTL/10 + time.Millisecond)
	}

	sh.mu.Lock()
	sh.env = host
	sh.rec = rec
	sh.holder = holder
	sh.epoch = rec.Epoch()
	sh.dead = false
	sh.takeovers++
	sh.mu.Unlock()
	f.obs.M().Counter("shard.takeovers").Inc()

	// Zombie probe: the fenced old recorder must refuse the append —
	// surface the latch at shard level.
	if pri != nil {
		if err := pri.Rec.Deploy(fmt.Sprintf("zombie-probe-shard%d", i)); journal.IsFenced(err) {
			f.Health.Fenced(i)
		}
	}
	return nil
}

// FleetReport aggregates the per-shard pool reports plus the router's
// own refusals. Conservation holds fleet-wide:
// Completed + Failed + Shed == Submitted.
type FleetReport struct {
	Shards     int
	Submitted  int64
	Completed  int64
	Failed     int64
	Shed       int64 // pool sheds on every shard + router Unroutable
	Unroutable int64
	Takeovers  int64
	Elapsed    time.Duration
	Goodput    float64 // completed instances per second, fleet-wide
	Router     shard.RouterStats
	PerShard   []sched.PoolReport
}

// Drain closes every shard's admission queue, waits for queued work to
// finish (including work buffered behind a failover), and returns the
// fleet-wide report.
func (f *Fleet) Drain() FleetReport {
	rep := FleetReport{
		Shards:    len(f.shards),
		Submitted: f.submitted.Load(),
		Router:    f.Router.Stats(),
	}
	for _, sh := range f.shards {
		pr := sh.pool.Drain()
		rep.Completed += pr.Completed
		rep.Failed += pr.Failed
		rep.Shed += pr.Shed
		rep.PerShard = append(rep.PerShard, pr)
		sh.mu.Lock()
		rep.Takeovers += int64(sh.takeovers)
		sh.mu.Unlock()
	}
	rep.Unroutable = rep.Router.Unroutable
	rep.Shed += rep.Unroutable
	rep.Elapsed = time.Since(f.start)
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Goodput = float64(rep.Completed) / secs
	}
	return rep
}

// Close stops the supervisor, followers, and heartbeats, and closes
// every shard's recorders. Call Drain first; Close does not wait for
// in-flight work.
func (f *Fleet) Close() {
	if f.stopSuper != nil {
		f.stopSuper()
		f.stopSuper = nil
	}
	for _, sh := range f.shards {
		sh.mu.Lock()
		stopFollow := sh.stopFollow
		sh.stopFollow = nil
		pri := sh.pri
		rec := sh.rec
		if pri != nil {
			pri.Pause()
		}
		sh.mu.Unlock()
		if stopFollow != nil {
			stopFollow()
		}
		sh.ws.StopHeartbeat()
		if pri != nil {
			pri.Rec.Close()
		}
		if rec != nil && (pri == nil || rec != pri.Rec) {
			rec.Close()
		}
	}
	if f.ownDir {
		os.RemoveAll(f.dir)
	}
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// ShardEnv returns shard i's current environment (the rebuilt host
// after a takeover).
func (f *Fleet) ShardEnv(i int) *Environment {
	sh := f.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.env
}

// ShardPrimary returns shard i's original primary — after a failover
// this is the fenced zombie, which is exactly what chaos tests probe.
func (f *Fleet) ShardPrimary(i int) *Primary { return f.shards[i].pri }

// ShardRecorder returns shard i's authoritative recorder (the promoted
// one after a takeover).
func (f *Fleet) ShardRecorder(i int) *journal.Recorder {
	sh := f.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.rec
}

// ShardStandby returns shard i's warm standby.
func (f *Fleet) ShardStandby(i int) *WarmStandby { return f.shards[i].ws }

// ShardDead reports whether shard i's primary process has been marked
// dead and not yet replaced by a promotion.
func (f *Fleet) ShardDead(i int) bool {
	sh := f.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.dead
}

// ShardTakeovers returns how many times shard i has failed over.
func (f *Fleet) ShardTakeovers(i int) int {
	sh := f.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.takeovers
}

// SetShardClock injects shard i's time source — the probe's freshness
// check and both lease guards follow it. Deterministic tests give each
// shard its own manual clock and advance only the victim's, so healthy
// shards never spuriously expire.
func (f *Fleet) SetShardClock(i int, now func() time.Time) {
	sh := f.shards[i]
	sh.mu.Lock()
	sh.now = now
	pri := sh.pri
	sh.mu.Unlock()
	if pri != nil {
		pri.Lease.SetClock(now)
	}
	sh.ws.Lease.SetClock(now)
}
