// Command tables regenerates the paper's Table I (general information and
// data management capabilities) and Table II (data management pattern
// support) from the live product reproductions.
//
// With -verify, every Table II cell's executable conformance case is run
// against a fresh database first; the command fails if any cell cannot be
// demonstrated by execution.
//
// Usage:
//
//	tables [-table 1|2|both] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"

	"wfsql/internal/patterns"
)

func main() {
	table := flag.String("table", "both", "which table to print: 1, 2, both, or fig1")
	verify := flag.Bool("verify", false, "execute all conformance cases before printing")
	flag.Parse()

	prods := patterns.Products()

	if *verify {
		results := patterns.RunConformance(prods)
		failures := patterns.Failures(results)
		fmt.Printf("conformance: %d cases executed, %d failed\n\n", len(results), len(failures))
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "FAIL %s %s / %s: %v\n", f.Product, f.Mechanism, f.Pattern, f.Err)
			}
			os.Exit(1)
		}
	}

	switch *table {
	case "fig1":
		fmt.Print(patterns.RenderFigure1())
	case "1":
		fmt.Print(patterns.TableI(prods))
	case "2":
		fmt.Print(patterns.TableII(prods))
	case "both":
		fmt.Print(patterns.TableI(prods))
		fmt.Println()
		fmt.Print(patterns.TableII(prods))
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown -table %q (want 1, 2, or both)\n", *table)
		os.Exit(2)
	}
}
