// Command patterncheck runs the full pattern-conformance suite: every
// (product, mechanism, pattern) claim of the paper's Table II is executed
// against a fresh database, and the verdict matrix is printed.
package main

import (
	"fmt"
	"os"

	"wfsql/internal/patterns"
)

func main() {
	prods := patterns.Products()
	results := patterns.RunConformance(prods)

	fmt.Println("PATTERN CONFORMANCE — every Table II cell executed against a live database")
	fmt.Println()
	current := ""
	failed := 0
	for _, r := range results {
		if r.Product != current {
			current = r.Product
			fmt.Printf("%s\n", current)
		}
		verdict := "PASS"
		if r.Err != nil {
			verdict = "FAIL: " + r.Err.Error()
			failed++
		}
		note := ""
		if r.Footnote != "" {
			note = " (" + r.Footnote + ")"
		}
		fmt.Printf("  %-30s %-18s [%s]%s %s\n", r.Mechanism, r.Pattern, r.Support, note, verdict)
	}
	fmt.Printf("\n%d cases, %d failed\n", len(results), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
