// Command sqlsh is a SQL shell over the embedded database engine
// (internal/sqldb). It reads semicolon-terminated statements from stdin
// (or -e / -f) and prints result tables.
//
// Usage:
//
//	sqlsh                  # interactive/stdin
//	sqlsh -e "SELECT 1+1"  # one-shot
//	sqlsh -f script.sql    # run a script file
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"wfsql/internal/sqldb"
)

func main() {
	expr := flag.String("e", "", "execute this statement and exit")
	file := flag.String("f", "", "execute this script file and exit")
	load := flag.String("load", "", "load a dump/script before executing")
	dump := flag.Bool("dump", false, "print a SQL dump of the database on exit")
	flag.Parse()

	db := sqldb.Open("shell")
	sess := db.Session()

	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqlsh: %v\n", err)
			os.Exit(1)
		}
		if _, err := db.ExecScript(string(data)); err != nil {
			fmt.Fprintf(os.Stderr, "sqlsh: load: %v\n", err)
			os.Exit(1)
		}
	}
	if *dump {
		defer func() { fmt.Print(db.Dump()) }()
	}

	runOne := func(sql string) bool {
		sql = strings.TrimSpace(sql)
		if sql == "" {
			return true
		}
		res, err := sess.Exec(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return false
		}
		fmt.Print(res.String())
		if res.IsQuery() {
			fmt.Printf("(%d rows)\n", len(res.Rows))
		}
		return true
	}

	switch {
	case *expr != "":
		if !runOne(*expr) {
			os.Exit(1)
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqlsh: %v\n", err)
			os.Exit(1)
		}
		ok := true
		for _, stmt := range splitStatements(string(data)) {
			if !runOne(stmt) {
				ok = false
				break
			}
		}
		if !ok {
			os.Exit(1)
		}
	default:
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var buf strings.Builder
		fmt.Fprint(os.Stderr, "sql> ")
		for sc.Scan() {
			line := sc.Text()
			buf.WriteString(line)
			buf.WriteByte('\n')
			if strings.HasSuffix(strings.TrimSpace(line), ";") {
				runOne(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
				buf.Reset()
			}
			fmt.Fprint(os.Stderr, "sql> ")
		}
		if buf.Len() > 0 {
			runOne(buf.String())
		}
	}
}

// splitStatements splits a script on top-level semicolons (quote-aware).
func splitStatements(script string) []string {
	var out []string
	var b strings.Builder
	inStr := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case c == '\'':
			inStr = !inStr
			b.WriteByte(c)
		case c == ';' && !inStr:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if strings.TrimSpace(b.String()) != "" {
		out = append(out, b.String())
	}
	return out
}
