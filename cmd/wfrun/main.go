// Command wfrun loads a XOML-style workflow markup file (the markup-only
// authoring mode of the Workflow Foundation reproduction) and executes it
// against an embedded database.
//
// The database is registered under the data source name given by -ds
// (default "db", reachable from markup connection strings as
// "Provider=SqlServer;Data Source=db") and optionally seeded from a SQL
// script via -seed. Initial host variables are set with repeated
// -var name=value flags. After the run, tracking events and final host
// variables are printed.
//
// With -journal DIR the run is durable: every effectful activity is
// written ahead to DIR's write-ahead log, and a run killed mid-flight
// can be resumed with -recover, which replays completed activities from
// their journaled results and continues live at the first un-journaled
// one. -recover with no in-flight instances starts a fresh (journaled)
// run.
//
// With -trace FILE every finished span (instance → activity → SQL
// statement) is appended to FILE as one JSON line; -metrics FILE writes
// the run's counter/histogram snapshot as indented JSON after the run
// ("-" sends either to stdout).
//
// With -instances N (and -parallel W workers) the workflow runs as N
// concurrent instances on the worker-pool instance scheduler — the
// multi-tenant execution shape of the WF runtime host — and the run
// reports aggregate throughput instead of per-instance host variables.
//
// Usage:
//
//	wfrun -xoml flow.xoml [-seed seed.sql] [-ds db] [-var Index=0] ...
//	      [-journal dir] [-recover] [-trace file] [-metrics file]
//	      [-instances 1] [-parallel 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wfsql/internal/journal"
	"wfsql/internal/mswf"
	"wfsql/internal/obsv"
	"wfsql/internal/sched"
	"wfsql/internal/sqldb"
)

// openSink opens path for writing ("-" = stdout).
func openSink(path string) (*os.File, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

type varFlags map[string]any

func (v varFlags) String() string { return fmt.Sprint(map[string]any(v)) }

func (v varFlags) Set(s string) error {
	k, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if i, err := strconv.ParseInt(val, 10, 64); err == nil {
		v[k] = i
	} else {
		v[k] = val
	}
	return nil
}

func main() {
	xomlPath := flag.String("xoml", "", "workflow markup file (required)")
	seedPath := flag.String("seed", "", "SQL script to seed the database")
	dsName := flag.String("ds", "db", "data source name for connection strings")
	journalDir := flag.String("journal", "", "directory for the durable instance journal")
	doRecover := flag.Bool("recover", false, "resume in-flight instances from the journal (requires -journal)")
	tracePath := flag.String("trace", "", "write the span trace as JSON lines to this file (- for stdout)")
	metricsPath := flag.String("metrics", "", "write the metrics snapshot as JSON to this file (- for stdout)")
	instances := flag.Int("instances", 1, "number of workflow instances to run")
	parallel := flag.Int("parallel", 1, "scheduler workers for multi-instance runs")
	vars := varFlags{}
	flag.Var(vars, "var", "initial host variable name=value (repeatable)")
	flag.Parse()

	if *instances > 1 && *doRecover {
		fmt.Fprintln(os.Stderr, "wfrun: -instances and -recover are mutually exclusive")
		flag.Usage()
		os.Exit(2)
	}

	if *doRecover && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "wfrun: -recover requires -journal")
		flag.Usage()
		os.Exit(2)
	}

	if *xomlPath == "" {
		fmt.Fprintln(os.Stderr, "wfrun: -xoml is required")
		flag.Usage()
		os.Exit(2)
	}
	markup, err := os.ReadFile(*xomlPath)
	if err != nil {
		fatal(err)
	}
	wf, err := mswf.LoadXOML(string(markup))
	if err != nil {
		fatal(err)
	}

	db := sqldb.Open(*dsName)
	if *seedPath != "" {
		script, err := os.ReadFile(*seedPath)
		if err != nil {
			fatal(err)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			fatal(fmt.Errorf("seed: %w", err))
		}
	}

	rt := mswf.NewRuntime()
	rt.RegisterDatabase(*dsName, mswf.SQLServer, db)

	var (
		obs    *obsv.Observability
		traceW *obsv.JSONLWriter
	)
	if *tracePath != "" || *metricsPath != "" {
		obs = obsv.New()
		if *tracePath != "" {
			f, closeF, err := openSink(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer closeF()
			traceW = obsv.NewJSONLWriter(f)
			obs.Tracer.AddSink(traceW)
		}
		rt.SetObservability(obs)
		db.SetObservability(obs)
	}

	var rec *journal.Recorder
	if *journalDir != "" {
		rec, err = journal.Open(*journalDir)
		if err != nil {
			fatal(fmt.Errorf("journal: %w", err))
		}
		defer rec.Close()
		rt.AttachJournal(rec)
	}

	if *instances > 1 {
		// Multi-instance mode: one immutable activity tree, N instances on
		// the worker pool, each with its own Context (and so its own
		// per-instance sqldb sessions and journal entries).
		s := sched.New(*parallel)
		s.SetObservability(obs)
		jobs := make([]sched.Job, *instances)
		for i := range jobs {
			jobs[i] = sched.Job{Stack: "WF", Name: fmt.Sprintf("%s#%d", *xomlPath, i), Run: func() error {
				initial := map[string]any{}
				for k, v := range vars {
					initial[k] = v
				}
				_, err := rt.Run(wf, initial)
				return err
			}}
		}
		rep := s.Run(jobs)
		fmt.Printf("%d instances on %d workers in %s: %.1f instances/sec (%d failed)\n",
			rep.Jobs, rep.Workers, rep.Elapsed.Round(0), rep.Throughput, rep.Failed)
		if traceW != nil && traceW.Err() != nil {
			fatal(fmt.Errorf("trace: %w", traceW.Err()))
		}
		if *metricsPath != "" {
			f, closeF, merr := openSink(*metricsPath)
			if merr != nil {
				fatal(merr)
			}
			if merr := obsv.WriteMetricsJSON(f, obs.M()); merr != nil {
				fatal(fmt.Errorf("metrics: %w", merr))
			}
			closeF()
		}
		if err := rep.FirstError(); err != nil {
			fatal(err)
		}
		return
	}

	var ctx *mswf.Context
	if *doRecover {
		inflight := rec.InFlight()
		if len(inflight) == 0 {
			fmt.Fprintln(os.Stderr, "wfrun: no in-flight instances to recover; starting fresh")
			ctx, err = rt.Run(wf, vars)
		} else {
			for _, ij := range inflight {
				fmt.Printf("recovering instance %d (%d memoized effects)\n", ij.ID, ij.MemoCount())
				ctx, err = rt.Resume(wf, ij)
				if err != nil {
					break
				}
			}
		}
	} else {
		ctx, err = rt.Run(wf, vars)
	}
	if ctx == nil {
		fatal(err)
	}
	fmt.Println("tracking:")
	for _, ev := range ctx.Events() {
		fmt.Printf("  %-30s %s\n", ev.Activity, ev.Status)
	}
	fmt.Println("host variables:")
	for _, name := range ctx.VarNames() {
		v, _ := ctx.Get(name)
		fmt.Printf("  %s = %v\n", name, v)
	}
	if traceW != nil && traceW.Err() != nil {
		fatal(fmt.Errorf("trace: %w", traceW.Err()))
	}
	if *metricsPath != "" {
		f, closeF, merr := openSink(*metricsPath)
		if merr != nil {
			fatal(merr)
		}
		if merr := obsv.WriteMetricsJSON(f, obs.M()); merr != nil {
			fatal(fmt.Errorf("metrics: %w", merr))
		}
		closeF()
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfrun: %v\n", err)
	os.Exit(1)
}
