// Command wfrun loads a XOML-style workflow markup file (the markup-only
// authoring mode of the Workflow Foundation reproduction) and executes it
// against an embedded database.
//
// The database is registered under the data source name given by -ds
// (default "db", reachable from markup connection strings as
// "Provider=SqlServer;Data Source=db") and optionally seeded from a SQL
// script via -seed. Initial host variables are set with repeated
// -var name=value flags. After the run, tracking events and final host
// variables are printed.
//
// Usage:
//
//	wfrun -xoml flow.xoml [-seed seed.sql] [-ds db] [-var Index=0] ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wfsql/internal/mswf"
	"wfsql/internal/sqldb"
)

type varFlags map[string]any

func (v varFlags) String() string { return fmt.Sprint(map[string]any(v)) }

func (v varFlags) Set(s string) error {
	k, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if i, err := strconv.ParseInt(val, 10, 64); err == nil {
		v[k] = i
	} else {
		v[k] = val
	}
	return nil
}

func main() {
	xomlPath := flag.String("xoml", "", "workflow markup file (required)")
	seedPath := flag.String("seed", "", "SQL script to seed the database")
	dsName := flag.String("ds", "db", "data source name for connection strings")
	vars := varFlags{}
	flag.Var(vars, "var", "initial host variable name=value (repeatable)")
	flag.Parse()

	if *xomlPath == "" {
		fmt.Fprintln(os.Stderr, "wfrun: -xoml is required")
		flag.Usage()
		os.Exit(2)
	}
	markup, err := os.ReadFile(*xomlPath)
	if err != nil {
		fatal(err)
	}
	wf, err := mswf.LoadXOML(string(markup))
	if err != nil {
		fatal(err)
	}

	db := sqldb.Open(*dsName)
	if *seedPath != "" {
		script, err := os.ReadFile(*seedPath)
		if err != nil {
			fatal(err)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			fatal(fmt.Errorf("seed: %w", err))
		}
	}

	rt := mswf.NewRuntime()
	rt.RegisterDatabase(*dsName, mswf.SQLServer, db)

	ctx, err := rt.Run(wf, vars)
	fmt.Println("tracking:")
	for _, ev := range ctx.Events() {
		fmt.Printf("  %-30s %s\n", ev.Activity, ev.Status)
	}
	fmt.Println("host variables:")
	for _, name := range ctx.VarNames() {
		v, _ := ctx.Get(name)
		fmt.Printf("  %s = %v\n", name, v)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfrun: %v\n", err)
	os.Exit(1)
}
