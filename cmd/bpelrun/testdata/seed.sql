CREATE TABLE Orders (
  OrderID INTEGER PRIMARY KEY,
  ItemID VARCHAR NOT NULL,
  Quantity INTEGER NOT NULL,
  Approved BOOLEAN NOT NULL
);
INSERT INTO Orders VALUES
  (1, 'bolt', 10, TRUE), (2, 'bolt', 5, TRUE), (3, 'nut', 7, FALSE),
  (4, 'nut', 3, TRUE), (5, 'screw', 2, TRUE), (6, 'screw', 9, FALSE);
CREATE TABLE OrderConfirmations (ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR);
