// Command bpelrun loads a BPEL process document with WID artifacts (the
// design-tool output serialized by internal/bpelxml) and executes it on
// the workflow engine against an embedded database — the deploy-and-run
// half of the paper's Figure 3 pipeline.
//
// Usage:
//
//	bpelrun -bpel process.bpel [-seed seed.sql] [-ds orderdb] [-var k=v]...
//	        [-journal dir] [-recover] [-trace file] [-metrics file]
//	        [-instances 1] [-parallel 1]
//
// With -instances N (and -parallel W workers) the deployed process runs
// as N concurrent instances on the worker-pool instance scheduler — the
// multi-tenant execution shape of a BPEL server — and the run reports
// aggregate throughput (per-activity trace printing is suppressed).
//
// With -trace FILE every finished span (instance → activity → SQL
// statement / bus call) is appended to FILE as one JSON line; -metrics
// FILE writes the run's counter/histogram snapshot as indented JSON
// after the run ("-" sends either to stdout).
//
// With -journal DIR every effectful activity is written ahead to DIR's
// write-ahead log; -recover resumes in-flight instances of the loaded
// process from the journal, replaying completed activities from their
// memoized results.
//
// Data sources referenced by wid:dataSourceVariable artifacts must be
// registered; -ds names the embedded database (default "orderdb").
// Snippets cannot be loaded from a document (they are code); processes
// run by this tool must be fully declarative.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wfsql/internal/bpelxml"
	"wfsql/internal/engine"
	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/sched"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

// openSink opens path for writing ("-" = stdout).
func openSink(path string) (*os.File, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

type varFlags map[string]string

func (v varFlags) String() string { return fmt.Sprint(map[string]string(v)) }

func (v varFlags) Set(s string) error {
	k, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v[k] = val
	return nil
}

func main() {
	bpelPath := flag.String("bpel", "", "BPEL process document (required)")
	seedPath := flag.String("seed", "", "SQL script to seed the database")
	dsName := flag.String("ds", "orderdb", "data source name to register")
	journalDir := flag.String("journal", "", "directory for the durable instance journal")
	doRecover := flag.Bool("recover", false, "resume in-flight instances from the journal (requires -journal)")
	tracePath := flag.String("trace", "", "write the span trace as JSON lines to this file (- for stdout)")
	metricsPath := flag.String("metrics", "", "write the metrics snapshot as JSON to this file (- for stdout)")
	instances := flag.Int("instances", 1, "number of process instances to run")
	parallel := flag.Int("parallel", 1, "scheduler workers for multi-instance runs")
	vars := varFlags{}
	flag.Var(vars, "var", "initial process variable name=value (repeatable)")
	flag.Parse()

	if *doRecover && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "bpelrun: -recover requires -journal")
		flag.Usage()
		os.Exit(2)
	}
	if *instances > 1 && *doRecover {
		fmt.Fprintln(os.Stderr, "bpelrun: -instances and -recover are mutually exclusive")
		flag.Usage()
		os.Exit(2)
	}
	if *bpelPath == "" {
		fmt.Fprintln(os.Stderr, "bpelrun: -bpel is required")
		flag.Usage()
		os.Exit(2)
	}
	doc, err := os.ReadFile(*bpelPath)
	if err != nil {
		fatal(err)
	}
	builder, err := bpelxml.UnmarshalBISProcess(string(doc), nil)
	if err != nil {
		fatal(err)
	}

	db := sqldb.Open(*dsName)
	if *seedPath != "" {
		script, err := os.ReadFile(*seedPath)
		if err != nil {
			fatal(err)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			fatal(fmt.Errorf("seed: %w", err))
		}
	}

	bus := wsbus.New()
	supplier := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", supplier.Handle)
	wsbus.RegisterSQLAdapter(bus, "SQLAdapter", db)

	e := engine.New(bus)
	e.RegisterDataSource(*dsName, db)

	var (
		obs    *obsv.Observability
		traceW *obsv.JSONLWriter
	)
	if *tracePath != "" || *metricsPath != "" {
		obs = obsv.New()
		if *tracePath != "" {
			f, closeF, terr := openSink(*tracePath)
			if terr != nil {
				fatal(terr)
			}
			defer closeF()
			traceW = obsv.NewJSONLWriter(f)
			obs.Tracer.AddSink(traceW)
		}
		e.SetObservability(obs)
		bus.SetObservability(obs)
		db.SetObservability(obs)
	}

	var rec *journal.Recorder
	if *journalDir != "" {
		rec, err = journal.Open(*journalDir)
		if err != nil {
			fatal(fmt.Errorf("journal: %w", err))
		}
		defer rec.Close()
		e.AttachJournal(rec)
	}
	if *instances <= 1 {
		// Per-activity trace printing is single-instance chrome; a
		// multi-instance run would interleave it beyond usefulness.
		e.AddTraceListener(func(id int64, ev engine.TraceEvent) {
			fmt.Printf("  [%d] %-30s %s %s\n", id, ev.Activity, ev.Kind, ev.Detail)
		})
	}

	// flushObs reports trace write errors and dumps the metrics
	// snapshot; called on every successful exit path.
	flushObs := func() {
		if traceW != nil && traceW.Err() != nil {
			fatal(fmt.Errorf("trace: %w", traceW.Err()))
		}
		if *metricsPath != "" {
			f, closeF, merr := openSink(*metricsPath)
			if merr != nil {
				fatal(merr)
			}
			if merr := obsv.WriteMetricsJSON(f, obs.M()); merr != nil {
				fatal(fmt.Errorf("metrics: %w", merr))
			}
			closeF()
		}
	}

	d, err := e.Deploy(builder.Build())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("deployed: %s\n", d.Describe())
	if *doRecover {
		inflight := rec.InFlight()
		if len(inflight) == 0 {
			fmt.Fprintln(os.Stderr, "bpelrun: no in-flight instances to recover; starting fresh")
		}
		for _, ij := range inflight {
			fmt.Printf("recovering instance %d (%d memoized effects)\n", ij.ID, ij.MemoCount())
			in, err := d.Resume(ij)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("instance %d: %s\n", in.ID, in.State())
		}
		if len(inflight) > 0 {
			report(db)
			flushObs()
			return
		}
	}
	if *instances > 1 {
		// Multi-instance mode: one deployment, N instances on the worker
		// pool, each with its own engine instance state and journal entry.
		s := sched.New(*parallel)
		s.SetObservability(obs)
		jobs := make([]sched.Job, *instances)
		for i := range jobs {
			jobs[i] = sched.Job{Stack: "BIS", Name: fmt.Sprintf("%s#%d", d.Describe(), i), Run: func() error {
				_, err := d.Run(vars)
				return err
			}}
		}
		rep := s.Run(jobs)
		fmt.Printf("%d instances on %d workers in %s: %.1f instances/sec (%d failed)\n",
			rep.Jobs, rep.Workers, rep.Elapsed.Round(0), rep.Throughput, rep.Failed)
		report(db)
		flushObs()
		if err := rep.FirstError(); err != nil {
			fatal(err)
		}
		return
	}
	in, err := d.Run(vars)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance %d: %s\n", in.ID, in.State())
	report(db)
	flushObs()
}

// report prints per-table row counts after the run.
func report(db *sqldb.DB) {
	for _, t := range db.TableNames() {
		res := db.MustExec("SELECT COUNT(*) FROM " + t)
		fmt.Printf("table %s: %s row(s)\n", t, res.Rows[0][0])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bpelrun: %v\n", err)
	os.Exit(1)
}
