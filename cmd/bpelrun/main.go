// Command bpelrun loads a BPEL process document with WID artifacts (the
// design-tool output serialized by internal/bpelxml) and executes it on
// the workflow engine against an embedded database — the deploy-and-run
// half of the paper's Figure 3 pipeline.
//
// Usage:
//
//	bpelrun -bpel process.bpel [-seed seed.sql] [-ds orderdb] [-var k=v]...
//
// Data sources referenced by wid:dataSourceVariable artifacts must be
// registered; -ds names the embedded database (default "orderdb").
// Snippets cannot be loaded from a document (they are code); processes
// run by this tool must be fully declarative.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wfsql/internal/bpelxml"
	"wfsql/internal/engine"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

type varFlags map[string]string

func (v varFlags) String() string { return fmt.Sprint(map[string]string(v)) }

func (v varFlags) Set(s string) error {
	k, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v[k] = val
	return nil
}

func main() {
	bpelPath := flag.String("bpel", "", "BPEL process document (required)")
	seedPath := flag.String("seed", "", "SQL script to seed the database")
	dsName := flag.String("ds", "orderdb", "data source name to register")
	vars := varFlags{}
	flag.Var(vars, "var", "initial process variable name=value (repeatable)")
	flag.Parse()

	if *bpelPath == "" {
		fmt.Fprintln(os.Stderr, "bpelrun: -bpel is required")
		flag.Usage()
		os.Exit(2)
	}
	doc, err := os.ReadFile(*bpelPath)
	if err != nil {
		fatal(err)
	}
	builder, err := bpelxml.UnmarshalBISProcess(string(doc), nil)
	if err != nil {
		fatal(err)
	}

	db := sqldb.Open(*dsName)
	if *seedPath != "" {
		script, err := os.ReadFile(*seedPath)
		if err != nil {
			fatal(err)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			fatal(fmt.Errorf("seed: %w", err))
		}
	}

	bus := wsbus.New()
	supplier := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", supplier.Handle)
	wsbus.RegisterSQLAdapter(bus, "SQLAdapter", db)

	e := engine.New(bus)
	e.RegisterDataSource(*dsName, db)
	e.AddTraceListener(func(id int64, ev engine.TraceEvent) {
		fmt.Printf("  [%d] %-30s %s %s\n", id, ev.Activity, ev.Kind, ev.Detail)
	})

	d, err := e.Deploy(builder.Build())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("deployed: %s\n", d.Describe())
	in, err := d.Run(vars)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance %d: %s\n", in.ID, in.State())
	for _, t := range db.TableNames() {
		res := db.MustExec("SELECT COUNT(*) FROM " + t)
		fmt.Printf("table %s: %s row(s)\n", t, res.Rows[0][0])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bpelrun: %v\n", err)
	os.Exit(1)
}
