// Command wfbench benchmarks the paper's running example (Figures 4, 6,
// 8) on all three product stacks with the observability layer attached,
// and writes one JSON report folding the per-layer metric snapshots —
// counters plus latency-histogram summaries (count/sum/min/max/mean/
// p50/p90/p99 in milliseconds) — together with wall-clock timings.
//
// Each figure is executed -runs times on a fresh environment; one
// metrics registry per figure accumulates across the runs, so the
// histogram summaries describe the whole sample, not a single run.
//
// Usage:
//
//	wfbench [-runs 25] [-orders 120] [-items 8] [-approve 80] [-seed 42]
//	        [-out BENCH_PR3.json]
//
// "-" writes the report to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"wfsql"
	"wfsql/internal/obsv"
)

// figureReport is the per-stack section of the report.
type figureReport struct {
	Stack   string        `json:"stack"`
	Runs    int           `json:"runs"`
	Metrics obsv.Snapshot `json:"metrics"`
}

// report is the whole BENCH_PR3.json document.
type report struct {
	Generated string                   `json:"generated"`
	GoVersion string                   `json:"go_version"`
	GOOS      string                   `json:"goos"`
	GOARCH    string                   `json:"goarch"`
	Workload  wfsql.Workload           `json:"workload"`
	Figures   map[string]*figureReport `json:"figures"`
}

func main() {
	runs := flag.Int("runs", 25, "iterations per figure")
	orders := flag.Int("orders", 120, "orders in the workload")
	items := flag.Int("items", 8, "distinct item types")
	approve := flag.Int("approve", 80, "approval percentage")
	seed := flag.Int64("seed", 42, "workload generator seed")
	out := flag.String("out", "BENCH_PR3.json", "report path (- for stdout)")
	flag.Parse()

	w := wfsql.Workload{Orders: *orders, Items: *items, ApprovalPercent: *approve, Seed: *seed}
	figures := []struct {
		name  string
		stack string
		run   func(env *wfsql.Environment) error
	}{
		{"Figure4_BIS", "BIS", func(env *wfsql.Environment) error { return env.RunFigure4BIS() }},
		{"Figure6_WF", "WF", func(env *wfsql.Environment) error { return env.RunFigure6WF() }},
		{"Figure8_Oracle", "Oracle", func(env *wfsql.Environment) error { return env.RunFigure8Oracle() }},
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Workload:  w,
		Figures:   map[string]*figureReport{},
	}

	for _, fig := range figures {
		o := obsv.New()
		wall := o.M().Histogram("bench.wall_ms")
		for i := 0; i < *runs; i++ {
			env := wfsql.NewEnvironment(w)
			env.EnableObservability(o)
			start := time.Now()
			if err := fig.run(env); err != nil {
				fatal(fmt.Errorf("%s run %d: %w", fig.name, i, err))
			}
			wall.ObserveDuration(time.Since(start))
			env.DisableObservability()
			want := env.ApprovedItemTypes()
			if got := env.ConfirmationCount(); got != want {
				fatal(fmt.Errorf("%s run %d: %d confirmations, want %d", fig.name, i, got, want))
			}
		}
		rep.Figures[fig.name] = &figureReport{
			Stack:   fig.stack,
			Runs:    *runs,
			Metrics: o.M().Snapshot(),
		}
		s := wall.Summary()
		fmt.Fprintf(os.Stderr, "%-14s %d runs  wall p50=%.3fms p90=%.3fms p99=%.3fms mean=%.3fms\n",
			fig.name, *runs, s.P50, s.P90, s.P99, s.Mean)
	}

	f := os.Stdout
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
	os.Exit(1)
}
