// Command wfbench benchmarks the paper's running example (Figures 4, 6,
// 8) on all three product stacks with the observability layer attached,
// and writes one JSON report folding the per-layer metric snapshots —
// counters plus latency-histogram summaries (count/sum/min/max/mean/
// p50/p90/p99 in milliseconds) — together with wall-clock timings.
//
// Each figure runs twice through the worker-pool instance scheduler
// (internal/sched) on a fresh environment per mode: once serially
// (workers=1) and once with -parallel workers, the multi-tenant shape
// the surveyed servers execute (many process instances against one
// shared database). The report records instances/sec for both modes,
// the parallel speedup, the parsed-statement-cache hit rate, and the
// metrics registry of the parallel run (sched.* throughput counters,
// sqldb.lock_wait_ms, sqldb.stmtcache.hits/misses, per-layer latency).
//
// Usage:
//
//	wfbench [-instances 32] [-parallel 8] [-orders 120] [-items 8]
//	        [-approve 80] [-seed 42] [-svclat 500us] [-out BENCH_PR4.json]
//
// -svclat injects a synthetic per-call supplier latency, modelling the
// remote web-service invocation every stack performs per item type
// (0 disables). "-" writes the report to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"wfsql"
	"wfsql/internal/obsv"
	"wfsql/internal/sched"
)

// modeReport describes one scheduler run (serial or parallel) of a figure.
type modeReport struct {
	Workers         int     `json:"workers"`
	Instances       int     `json:"instances"`
	Failed          int     `json:"failed"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	InstancesPerSec float64 `json:"instances_per_sec"`
	QueueWaitP90MS  float64 `json:"queue_wait_p90_ms"`
	RunP50MS        float64 `json:"run_p50_ms"`
	RunP90MS        float64 `json:"run_p90_ms"`
}

// cacheReport is the parsed-statement-cache outcome of the parallel run.
type cacheReport struct {
	Size          int     `json:"size"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Flushes       int64   `json:"flushes"`
	Invalidations int64   `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

// figureReport is the per-stack section of the report.
type figureReport struct {
	Stack     string        `json:"stack"`
	Serial    *modeReport   `json:"serial"`
	Parallel  *modeReport   `json:"parallel"`
	Speedup   float64       `json:"speedup"` // parallel / serial instances-per-sec
	StmtCache cacheReport   `json:"stmt_cache"`
	Metrics   obsv.Snapshot `json:"metrics"` // parallel-run registry
}

// report is the whole BENCH_PR4.json document.
type report struct {
	Generated  string                   `json:"generated"`
	GoVersion  string                   `json:"go_version"`
	GOOS       string                   `json:"goos"`
	GOARCH     string                   `json:"goarch"`
	CPUs       int                      `json:"cpus"`
	Workload   wfsql.Workload           `json:"workload"`
	ServiceLat string                   `json:"service_latency"`
	Figures    map[string]*figureReport `json:"figures"`
}

func main() {
	instances := flag.Int("instances", 32, "workflow instances per figure per mode")
	parallel := flag.Int("parallel", 8, "scheduler workers in the parallel mode")
	orders := flag.Int("orders", 120, "orders in the workload")
	items := flag.Int("items", 8, "distinct item types")
	approve := flag.Int("approve", 80, "approval percentage")
	seed := flag.Int64("seed", 42, "workload generator seed")
	svclat := flag.Duration("svclat", 500*time.Microsecond, "synthetic supplier invocation latency (0 disables)")
	out := flag.String("out", "BENCH_PR4.json", "report path (- for stdout)")
	overload := flag.Bool("overload", false, "run the goodput-vs-offered-load overload series instead of the figure matrix")
	slo := flag.Duration("slo", 250*time.Millisecond, "overload mode: per-instance completion SLO (and protected-mode budget)")
	loadDur := flag.Duration("loaddur", 2*time.Second, "overload mode: open-loop offered-load duration per point")
	failover := flag.Bool("failover", false, "run the warm-standby failover series instead of the figure matrix")
	ttl := flag.Duration("ttl", 150*time.Millisecond, "failover/fleet modes: lease TTL (expiry detection dominates downtime; too low false-fences a healthy primary on scheduling hiccups)")
	fleet := flag.Bool("fleet", false, "run the sharded-fleet chaos series instead of the figure matrix")
	shards := flag.Int("shards", 3, "fleet mode: shard count")
	mvcc := flag.Bool("mvcc", false, "run the MVCC worker series (figures at 1/2/4/8 workers + raw-engine mixed read/write) instead of the figure matrix")
	plancache := flag.Bool("plancache", false, "run the plan-cache series (figures at 1/8 workers, cache hit rate + parse-vs-exec breakdown) instead of the figure matrix")
	flag.Parse()

	w := wfsql.Workload{Orders: *orders, Items: *items, ApprovalPercent: *approve, Seed: *seed}
	if *overload {
		o := *out
		if o == "BENCH_PR4.json" { // default not overridden: overload series gets its own file
			o = "BENCH_PR5.json"
		}
		runOverloadBench(w, *parallel, *svclat, *slo, *loadDur, o)
		return
	}
	if *failover {
		o := *out
		if o == "BENCH_PR4.json" { // default not overridden: failover series gets its own file
			o = "BENCH_PR6.json"
		}
		// Per-phase burst large enough that the lease-TTL downtime is
		// small against the work, the regime a warm standby targets.
		runFailoverBench(w, 8**instances, *parallel, *svclat, *ttl, o)
		return
	}
	if *fleet {
		o := *out
		if o == "BENCH_PR4.json" { // default not overridden: fleet series gets its own file
			o = "BENCH_PR7.json"
		}
		// Per-phase burst sized so one shard's lease-TTL downtime is small
		// against the fleet's work — the blast radius the shards buy.
		runFleetBench(w, 16**instances, *shards, *svclat, *ttl, o)
		return
	}
	if *mvcc {
		o := *out
		if o == "BENCH_PR4.json" { // default not overridden: MVCC series gets its own file
			o = "BENCH_PR8.json"
		}
		runMvccBench(w, *instances, *svclat, o)
		return
	}
	if *plancache {
		o := *out
		if o == "BENCH_PR4.json" { // default not overridden: plan-cache series gets its own file
			o = "BENCH_PR9.json"
		}
		runPlanCacheBench(w, *instances, *svclat, o)
		return
	}
	figures := []struct {
		name  string
		stack string
		run   func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error)
	}{
		{"Figure4_BIS", "BIS", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure4BISParallel(cfg)
		}},
		{"Figure6_WF", "WF", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure6WFParallel(cfg)
		}},
		{"Figure8_Oracle", "Oracle", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure8OracleParallel(cfg)
		}},
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Workload:   w,
		ServiceLat: svclat.String(),
		Figures:    map[string]*figureReport{},
	}

	for _, fig := range figures {
		fr := &figureReport{Stack: fig.stack}
		for _, mode := range []struct {
			label   string
			workers int
		}{
			{"serial", 1},
			{"parallel", *parallel},
		} {
			env := wfsql.NewEnvironment(w)
			injectLatency(env, *svclat)
			o := env.EnableObservability(obsv.New())
			sr, err := fig.run(env, wfsql.ParallelConfig{Instances: *instances, Workers: mode.workers})
			if err != nil {
				fatal(fmt.Errorf("%s %s: %w", fig.name, mode.label, err))
			}
			env.DisableObservability()
			want := *instances * env.ApprovedItemTypes()
			if got := env.ConfirmationCount(); got != want {
				fatal(fmt.Errorf("%s %s: %d confirmations, want %d (instances × item types)", fig.name, mode.label, got, want))
			}
			mr := &modeReport{
				Workers:         sr.Workers,
				Instances:       sr.Jobs,
				Failed:          sr.Failed,
				ElapsedMS:       float64(sr.Elapsed) / float64(time.Millisecond),
				InstancesPerSec: sr.Throughput,
				QueueWaitP90MS:  o.M().Histogram("sched.queue_wait_ms").Summary().P90,
				RunP50MS:        o.M().Histogram("sched.run_ms").Summary().P50,
				RunP90MS:        o.M().Histogram("sched.run_ms").Summary().P90,
			}
			if mode.label == "serial" {
				fr.Serial = mr
			} else {
				fr.Parallel = mr
				fr.Metrics = o.M().Snapshot()
				cs := env.DB.StmtCacheStats()
				fr.StmtCache = cacheReport{Size: cs.Size, Hits: cs.Hits, Misses: cs.Misses, Flushes: cs.Flushes, Invalidations: cs.Invalidations}
				if total := cs.Hits + cs.Misses; total > 0 {
					fr.StmtCache.HitRate = float64(cs.Hits) / float64(total)
				}
			}
		}
		if fr.Serial.InstancesPerSec > 0 {
			fr.Speedup = fr.Parallel.InstancesPerSec / fr.Serial.InstancesPerSec
		}
		rep.Figures[fig.name] = fr
		fmt.Fprintf(os.Stderr,
			"%-14s %d instances  serial %.1f inst/s  parallel(x%d) %.1f inst/s  speedup %.2fx  cache hit %.0f%%\n",
			fig.name, *instances, fr.Serial.InstancesPerSec, *parallel,
			fr.Parallel.InstancesPerSec, fr.Speedup, 100*fr.StmtCache.HitRate)
	}

	f := os.Stdout
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

// injectLatency models the remote supplier: the BPEL stacks invoke it
// over the bus (which supports synthetic latency natively); the WF
// runtime calls its registered service directly, so the handler is
// wrapped with the same delay.
func injectLatency(env *wfsql.Environment, d time.Duration) {
	if d <= 0 {
		return
	}
	env.Bus.SetLatency(d)
	supplier := env.Supplier
	env.Runtime.RegisterService("OrderFromSupplier", func(req map[string]string) (map[string]string, error) {
		time.Sleep(d)
		return supplier.Handle(req)
	})
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
	os.Exit(1)
}
