package main

// The -overload mode measures goodput versus offered load: it first
// finds the environment's saturation throughput with a closed-loop run,
// then offers open-loop arrivals at 1×, 2×, and 4× that rate, twice per
// multiple — once protected (Shed admission + per-instance deadline
// budget) and once unbounded (Block admission, effectively infinite
// queue, no budget). Goodput counts only instances that completed
// within the SLO of their submission; the unbounded baseline completes
// everything eventually but almost nothing on time once the queue
// builds, which is exactly the collapse admission control prevents.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"wfsql"
	"wfsql/internal/admit"
)

// overloadMode describes one protected-or-unbounded run at one load
// multiple.
type overloadMode struct {
	Policy         string  `json:"policy"`
	QueueBound     int     `json:"queue_bound"`
	Budget         string  `json:"budget"` // "" = none
	Submitted      int64   `json:"submitted"`
	Completed      int64   `json:"completed"`
	Failed         int64   `json:"failed"`
	Shed           int64   `json:"shed"`
	OnTime         int64   `json:"on_time"` // completed within SLO of submission
	ElapsedMS      float64 `json:"elapsed_ms"`
	GoodputPerSec  float64 `json:"goodput_per_sec"` // on-time completions / elapsed
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	QueueHighWater int     `json:"queue_high_water"`
}

// overloadPoint is one offered-load multiple.
type overloadPoint struct {
	Multiple      float64       `json:"multiple"`
	OfferedPerSec float64       `json:"offered_per_sec"`
	Protected     *overloadMode `json:"protected"`
	Unbounded     *overloadMode `json:"unbounded"`
}

// overloadReport is the whole BENCH_PR5.json document.
type overloadReport struct {
	Generated            string          `json:"generated"`
	GoVersion            string          `json:"go_version"`
	GOOS                 string          `json:"goos"`
	GOARCH               string          `json:"goarch"`
	CPUs                 int             `json:"cpus"`
	Workload             wfsql.Workload  `json:"workload"`
	ServiceLat           string          `json:"service_latency"`
	Workers              int             `json:"workers"`
	SLO                  string          `json:"slo"`
	LoadDuration         string          `json:"load_duration"`
	SaturationPerSec     float64         `json:"saturation_per_sec"`
	Series               []overloadPoint `json:"series"`
	ProtectedRetention4x float64         `json:"protected_retention_4x"` // goodput@4x / saturation
	UnboundedRetention4x float64         `json:"unbounded_retention_4x"`
}

// runOverloadBench drives the goodput-vs-offered-load series.
func runOverloadBench(w wfsql.Workload, workers int, svclat, slo, loadDur time.Duration, out string) {
	rep := overloadReport{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		Workload:     w,
		ServiceLat:   svclat.String(),
		Workers:      workers,
		SLO:          slo.String(),
		LoadDuration: loadDur.String(),
	}

	// Saturation: a closed-loop burst with backpressure admission —
	// workers are never idle, nothing is shed, so completed/elapsed is
	// the service capacity.
	satEnv := wfsql.NewEnvironment(w)
	injectLatency(satEnv, svclat)
	satRep, err := satEnv.RunFigure4BISOverload(wfsql.OverloadConfig{
		Instances:  8 * workers,
		Workers:    workers,
		QueueBound: 2 * workers,
		Policy:     admit.Block,
	})
	if err != nil {
		fatal(fmt.Errorf("saturation run: %w", err))
	}
	rep.SaturationPerSec = satRep.Goodput
	fmt.Fprintf(os.Stderr, "saturation: %.1f inst/s (%d workers, svclat %v)\n",
		rep.SaturationPerSec, workers, svclat)

	for _, mult := range []float64{1, 2, 4} {
		offered := mult * rep.SaturationPerSec
		pace := time.Duration(float64(time.Second) / offered)
		instances := int(math.Ceil(offered * loadDur.Seconds()))
		if instances < 1 {
			instances = 1
		}
		pt := overloadPoint{Multiple: mult, OfferedPerSec: offered}

		protected := wfsql.OverloadConfig{
			Instances:  instances,
			Workers:    workers,
			QueueBound: 2 * workers,
			Policy:     admit.Shed,
			Budget:     slo,
			Pace:       pace,
		}
		pt.Protected = runOverloadMode(w, svclat, slo, protected)

		unbounded := wfsql.OverloadConfig{
			Instances:  instances,
			Workers:    workers,
			QueueBound: instances, // never refuses: the unbounded baseline
			Policy:     admit.Block,
			Pace:       pace,
		}
		pt.Unbounded = runOverloadMode(w, svclat, slo, unbounded)

		rep.Series = append(rep.Series, pt)
		fmt.Fprintf(os.Stderr,
			"%.0fx offered %.1f/s  protected %.1f/s on-time (shed %d)  unbounded %.1f/s on-time (p99 wait %.0fms)\n",
			mult, offered, pt.Protected.GoodputPerSec, pt.Protected.Shed,
			pt.Unbounded.GoodputPerSec, pt.Unbounded.QueueWaitP99MS)
	}

	if rep.SaturationPerSec > 0 {
		last := rep.Series[len(rep.Series)-1]
		rep.ProtectedRetention4x = last.Protected.GoodputPerSec / rep.SaturationPerSec
		rep.UnboundedRetention4x = last.Unbounded.GoodputPerSec / rep.SaturationPerSec
	}
	fmt.Fprintf(os.Stderr, "goodput retention at 4x: protected %.0f%%, unbounded %.0f%%\n",
		100*rep.ProtectedRetention4x, 100*rep.UnboundedRetention4x)

	f := os.Stdout
	if out != "-" {
		var err error
		f, err = os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
}

// runOverloadMode executes one open-loop run on a fresh environment and
// folds the pool report into the JSON shape. On-time counts completed
// instances whose sojourn (queue wait + run time) fit inside the SLO;
// for runs without a budget that is the goodput an SLO-bound caller
// actually observes.
func runOverloadMode(w wfsql.Workload, svclat, slo time.Duration, cfg wfsql.OverloadConfig) *overloadMode {
	env := wfsql.NewEnvironment(w)
	injectLatency(env, svclat)
	pr, err := env.RunFigure4BISOverload(cfg)
	if err != nil && cfg.Budget == 0 {
		// Without a budget every admitted instance must complete.
		fatal(fmt.Errorf("overload mode (%v): %w", cfg.Policy, err))
	}
	m := &overloadMode{
		Policy:         cfg.Policy.String(),
		QueueBound:     cfg.QueueBound,
		Submitted:      pr.Submitted,
		Completed:      pr.Completed,
		Failed:         pr.Failed,
		Shed:           pr.Shed,
		ElapsedMS:      float64(pr.Elapsed) / float64(time.Millisecond),
		QueueWaitP99MS: float64(pr.QueueWaitP99()) / float64(time.Millisecond),
		QueueHighWater: pr.QueueHighWater,
	}
	if cfg.Budget > 0 {
		m.Budget = cfg.Budget.String()
	}
	for _, r := range pr.Results {
		if !r.Shed && r.Err == nil && r.QueueWait+r.RunTime <= slo {
			m.OnTime++
		}
	}
	if secs := pr.Elapsed.Seconds(); secs > 0 {
		m.GoodputPerSec = float64(m.OnTime) / secs
	}
	return m
}
