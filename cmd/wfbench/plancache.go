package main

// The -plancache mode: the PR 9 statement-cache series. Parse-time
// literal normalization keys the plan cache on parameterized text, so a
// workflow's literal-bearing DML (one INSERT per instance, per item) now
// collapses onto shared plans. This series runs the Figure 4/6/8
// workloads serially and at 8 workers, and reports per figure:
//
//   - the plan-cache outcome of the 8-worker run (hits/misses/hit rate,
//     evictions never counted here, plus the sqldb.stmtcache.size gauge)
//   - the parse-vs-exec breakdown (sqldb.parse_ms / sqldb.exec_ms
//     histogram summaries and parse's share of the statement time)
//   - instances/sec at both worker counts against the committed PR 8
//     8-worker baseline (BENCH_PR8.json when present, embedded numbers
//     otherwise)
//
// Lands in BENCH_PR9.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"wfsql"
	"wfsql/internal/obsv"
	"wfsql/internal/sched"
)

// planCacheStats extends the figure-matrix cacheReport with the
// eviction counter and the final sqldb.stmtcache.size gauge reading.
type planCacheStats struct {
	Size          int     `json:"size"`
	SizeGauge     float64 `json:"size_gauge"`      // sqldb.stmtcache.size at run end
	SizeGaugeHigh float64 `json:"size_gauge_high"` // high-water mark of the gauge
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	Flushes       int64   `json:"flushes"`
	Invalidations int64   `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

// parseExecReport is the parse-vs-exec time breakdown of one run.
type parseExecReport struct {
	Parse obsv.HistogramSummary `json:"parse_ms"`
	Exec  obsv.HistogramSummary `json:"exec_ms"`
	// ParseShare is parse-sum / (parse-sum + exec-sum): the fraction of
	// total statement time spent parsing. Cache hits observe parse=0,
	// so a high hit rate drives this toward zero.
	ParseShare float64 `json:"parse_share"`
}

// pr8Baseline carries the 8-worker instances/sec out of the MVCC series
// (PR 8) for before/after comparison.
type pr8Baseline struct {
	InstancesPerSec float64 `json:"instances_per_sec_x8"`
	Source          string  `json:"source"` // BENCH_PR8.json or "embedded"
}

// planCacheFigure is the per-stack section of the report.
type planCacheFigure struct {
	Stack       string                 `json:"stack"`
	Workers     map[string]*modeReport `json:"workers"` // keyed "1", "8"
	Speedup8    float64                `json:"speedup_8"`
	StmtCache   planCacheStats         `json:"stmt_cache"` // 8-worker run
	ParseExec   parseExecReport        `json:"parse_exec"` // 8-worker run
	BaselinePR8 *pr8Baseline           `json:"baseline_pr8,omitempty"`
	// VsPR8 is this run's 8-worker instances/sec over the PR 8 baseline
	// (>= 1.0 means no regression).
	VsPR8 float64 `json:"vs_pr8,omitempty"`
}

// planCacheReport is the whole BENCH_PR9.json document.
type planCacheReport struct {
	Generated  string                      `json:"generated"`
	GoVersion  string                      `json:"go_version"`
	GOOS       string                      `json:"goos"`
	GOARCH     string                      `json:"goarch"`
	CPUs       int                         `json:"cpus"`
	Workload   wfsql.Workload              `json:"workload"`
	ServiceLat string                      `json:"service_latency"`
	Figures    map[string]*planCacheFigure `json:"figures"`
}

// Embedded PR 8 8-worker baselines (from the committed BENCH_PR8.json
// run), used when the file itself is not on disk.
var embeddedPR8 = map[string]float64{
	"Figure4_BIS":    709.0,
	"Figure6_WF":     764.2,
	"Figure8_Oracle": 771.3,
}

func runPlanCacheBench(w wfsql.Workload, instances int, svclat time.Duration, out string) {
	rep := &planCacheReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Workload:   w,
		ServiceLat: svclat.String(),
		Figures:    map[string]*planCacheFigure{},
	}
	baselines := loadPR8Baselines("BENCH_PR8.json")

	figures := []struct {
		name  string
		stack string
		run   func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error)
	}{
		{"Figure4_BIS", "BIS", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure4BISParallel(cfg)
		}},
		{"Figure6_WF", "WF", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure6WFParallel(cfg)
		}},
		{"Figure8_Oracle", "Oracle", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure8OracleParallel(cfg)
		}},
	}

	for _, fig := range figures {
		fr := &planCacheFigure{
			Stack:       fig.stack,
			Workers:     map[string]*modeReport{},
			BaselinePR8: baselines[fig.name],
		}
		for _, workers := range []int{1, 8} {
			env := wfsql.NewEnvironment(w)
			injectLatency(env, svclat)
			o := env.EnableObservability(obsv.New())
			sr, err := fig.run(env, wfsql.ParallelConfig{Instances: instances, Workers: workers})
			if err != nil {
				fatal(fmt.Errorf("%s x%d: %w", fig.name, workers, err))
			}
			env.DisableObservability()
			want := instances * env.ApprovedItemTypes()
			if got := env.ConfirmationCount(); got != want {
				fatal(fmt.Errorf("%s x%d: %d confirmations, want %d", fig.name, workers, got, want))
			}
			key := fmt.Sprintf("%d", workers)
			fr.Workers[key] = &modeReport{
				Workers:         sr.Workers,
				Instances:       sr.Jobs,
				Failed:          sr.Failed,
				ElapsedMS:       float64(sr.Elapsed) / float64(time.Millisecond),
				InstancesPerSec: sr.Throughput,
				QueueWaitP90MS:  o.M().Histogram("sched.queue_wait_ms").Summary().P90,
				RunP50MS:        o.M().Histogram("sched.run_ms").Summary().P50,
				RunP90MS:        o.M().Histogram("sched.run_ms").Summary().P90,
			}
			if workers == 8 {
				cs := env.DB.StmtCacheStats()
				g := o.M().Gauge("sqldb.stmtcache.size")
				fr.StmtCache = planCacheStats{
					Size:          cs.Size,
					SizeGauge:     g.Value(),
					SizeGaugeHigh: g.High(),
					Hits:          cs.Hits,
					Misses:        cs.Misses,
					Evictions:     cs.Evictions,
					Flushes:       cs.Flushes,
					Invalidations: cs.Invalidations,
				}
				// Guarded: an all-prepared run observes neither hits nor
				// misses and must report 0, not NaN.
				if total := cs.Hits + cs.Misses; total > 0 {
					fr.StmtCache.HitRate = float64(cs.Hits) / float64(total)
				}
				parse := o.M().Histogram("sqldb.parse_ms").Summary()
				exec := o.M().Histogram("sqldb.exec_ms").Summary()
				fr.ParseExec = parseExecReport{Parse: parse, Exec: exec}
				if total := parse.Sum + exec.Sum; total > 0 {
					fr.ParseExec.ParseShare = parse.Sum / total
				}
			}
		}
		if s1 := fr.Workers["1"].InstancesPerSec; s1 > 0 {
			fr.Speedup8 = fr.Workers["8"].InstancesPerSec / s1
		}
		if b := fr.BaselinePR8; b != nil && b.InstancesPerSec > 0 {
			fr.VsPR8 = fr.Workers["8"].InstancesPerSec / b.InstancesPerSec
		}
		rep.Figures[fig.name] = fr
		fmt.Fprintf(os.Stderr,
			"%-14s x1 %.1f  x8 %.1f inst/s  cache hit %.1f%% (%d/%d)  parse share %.2f%%  vs PR8 %.2fx\n",
			fig.name, fr.Workers["1"].InstancesPerSec, fr.Workers["8"].InstancesPerSec,
			100*fr.StmtCache.HitRate, fr.StmtCache.Hits, fr.StmtCache.Hits+fr.StmtCache.Misses,
			100*fr.ParseExec.ParseShare, fr.VsPR8)
	}

	f := os.Stdout
	if out != "-" {
		var err error
		f, err = os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
}

// loadPR8Baselines pulls the 8-worker instances/sec per figure out of a
// committed BENCH_PR8.json; absent that, the embedded numbers stand in.
func loadPR8Baselines(path string) map[string]*pr8Baseline {
	out := map[string]*pr8Baseline{}
	for name, ips := range embeddedPR8 {
		out[name] = &pr8Baseline{InstancesPerSec: ips, Source: "embedded"}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return out
	}
	var doc struct {
		Figures map[string]struct {
			Workers map[string]struct {
				InstancesPerSec float64 `json:"instances_per_sec"`
			} `json:"workers"`
		} `json:"figures"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return out
	}
	for name, fig := range doc.Figures {
		if w8, ok := fig.Workers["8"]; ok && w8.InstancesPerSec > 0 {
			out[name] = &pr8Baseline{InstancesPerSec: w8.InstancesPerSec, Source: path}
		}
	}
	return out
}
