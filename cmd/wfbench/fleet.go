package main

// The -fleet mode measures the sharded fleet's blast radius: each stack
// runs the same instance burst twice over a self-driving fleet of
// -shards lease-fenced primaries (heartbeats, followers, and the
// supervisor sweep all on real timers) — once undisturbed, once with a
// seed-chosen shard primary crash-injected mid-burst. The supervisor
// detects the death via lease staleness, promotes that shard's warm
// standby, and the router rides out the window by buffering the
// victim's submissions; healthy shards never stop. Goodput retention is
// the chaos run's fleet-wide completed-per-second against the
// undisturbed run's — the fraction of throughput a 1-of-N primary loss
// leaves standing. The victim shard and the crash's effect index both
// derive from -seed, so a report is reproducible bit-for-bit in
// placement and fault schedule.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"wfsql"
	"wfsql/internal/chaos"
	"wfsql/internal/journal"
	"wfsql/internal/shard"
)

// fleetInvokeActivity names each stack's supplier-invocation activity —
// the crash point with the widest failure window (effect applied,
// journal record in doubt).
var fleetInvokeActivity = map[string]string{
	"BIS":    "invoke",
	"WF":     "invoke",
	"Oracle": "Invoke",
}

// fleetPhase is one burst's fleet-wide outcome.
type fleetPhase struct {
	Submitted         int64   `json:"submitted"`
	Completed         int64   `json:"completed"`
	Failed            int64   `json:"failed"`
	Shed              int64   `json:"shed"`
	Unroutable        int64   `json:"unroutable"`
	ElapsedMS         float64 `json:"elapsed_ms"`
	GoodputPerSec     float64 `json:"goodput_per_sec"`
	PerShardCompleted []int64 `json:"per_shard_completed"`
}

// fleetFigure is the per-stack section of BENCH_PR7.json.
type fleetFigure struct {
	Stack            string      `json:"stack"`
	Baseline         *fleetPhase `json:"baseline"`
	Chaos            *fleetPhase `json:"chaos"`
	Victim           int         `json:"victim_shard"`
	VictimRuns       int         `json:"victim_placed_instances"`
	AtEffect         int         `json:"crash_at_effect"`
	DetectMS         float64     `json:"detect_ms"`            // death observed -> supervisor reacts
	FailoverMS       float64     `json:"failover_ms"`          // death observed -> standby promoted
	Takeovers        int64       `json:"takeovers"`            // fleet-wide, want exactly 1
	FencedWrites     int64       `json:"old_primary_fenced_writes"`
	Epoch            int64       `json:"takeover_epoch"`
	GoodputRetention float64     `json:"goodput_retention"` // chaos goodput / baseline goodput
}

// fleetReport is the whole BENCH_PR7.json document.
type fleetReport struct {
	Generated    string                  `json:"generated"`
	GoVersion    string                  `json:"go_version"`
	GOOS         string                  `json:"goos"`
	GOARCH       string                  `json:"goarch"`
	CPUs         int                     `json:"cpus"`
	Workload     wfsql.Workload          `json:"workload"`
	ServiceLat   string                  `json:"service_latency"`
	Shards       int                     `json:"shards"`
	Instances    int                     `json:"instances_per_phase"`
	LeaseTTL     string                  `json:"lease_ttl"`
	Seed         int64                   `json:"seed"`
	Figures      map[string]*fleetFigure `json:"figures"`
	MinRetention float64                 `json:"min_goodput_retention"`
}

// startBenchFleet brings up a fully self-driving fleet: real heartbeats
// at TTL/5 renew every shard's lease, every standby follows its WAL, and
// the supervisor sweeps at the same cadence, so detection and takeover
// run on wall-clock time exactly as a deployment would. One worker per
// shard keeps the crash's failure deterministic: the victim's single
// in-flight run dies, everything queued behind it rides out the
// failover in the admission queue.
func startBenchFleet(w wfsql.Workload, stack wfsql.FleetStack, shards, instances int, svclat, ttl time.Duration) *wfsql.Fleet {
	f, err := wfsql.StartFleet(wfsql.FleetConfig{
		Shards:       shards,
		Workers:      1,
		QueueBound:   instances + 1, // every submission admits immediately; no sheds in the series
		TTL:          ttl,
		Heartbeat:    ttl / 10,
		CheckEvery:   ttl / 5,
		FailoverWait: 4*ttl + 10*time.Second,
		Workload:     w,
		Stack:        stack,
	})
	if err != nil {
		fatal(fmt.Errorf("%s: start fleet: %w", stack.Name, err))
	}
	for i := 0; i < shards; i++ {
		injectLatency(f.ShardEnv(i), svclat)
	}
	return f
}

// submitBurst places instances keyed submissions across the fleet and
// drains it, returning the report. Keys are the deterministic
// "order#NNNN" sequence, so placement depends only on the ring.
func submitBurst(f *wfsql.Fleet, stack string, instances int) wfsql.FleetReport {
	ctx := context.Background()
	for j := 0; j < instances; j++ {
		if err := f.Submit(ctx, fmt.Sprintf("order#%04d", j)); err != nil {
			fatal(fmt.Errorf("%s: submit %d: %w", stack, j, err))
		}
	}
	return f.Drain()
}

// fleetTrials is how many baseline/chaos pairs each stack runs; the
// pair with the median retention ratio is the one reported. The
// failover window under measurement is a few hundred milliseconds
// against multi-second bursts whose wall-clock jitters by more than
// that, so a single pair would mostly measure scheduler luck.
const fleetTrials = 3

func fleetPhaseReport(rep wfsql.FleetReport) *fleetPhase {
	p := &fleetPhase{
		Submitted:  rep.Submitted,
		Completed:  rep.Completed,
		Failed:     rep.Failed,
		Shed:       rep.Shed,
		Unroutable: rep.Unroutable,
		ElapsedMS:  ms(rep.Elapsed),
	}
	p.GoodputPerSec = rep.Goodput
	for _, pr := range rep.PerShard {
		p.PerShardCompleted = append(p.PerShardCompleted, pr.Completed)
	}
	return p
}

// runFleetBench drives the fleet chaos series: per stack, an
// undisturbed fleet burst, then the same burst with one shard primary
// killed mid-stream.
func runFleetBench(w wfsql.Workload, instances, shards int, svclat, ttl time.Duration, out string) {
	// N shards' heartbeat and follower goroutines contend with the
	// bursts themselves; a TTL tuned for one warm standby (the -failover
	// default) false-fences healthy primaries here when a renewal loses
	// the CPU for a beat too long. Floor it at fleet scale.
	if min := 300 * time.Millisecond; ttl < min {
		ttl = min
	}
	rep := fleetReport{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		Workload:     w,
		ServiceLat:   svclat.String(),
		Shards:       shards,
		Instances:    instances,
		LeaseTTL:     ttl.String(),
		Seed:         w.Seed,
		Figures:      map[string]*fleetFigure{},
		MinRetention: 1,
	}
	// One generator drives every stack's fault schedule, so the whole
	// series replays from -seed alone.
	rng := rand.New(rand.NewSource(w.Seed))

	for _, stack := range wfsql.FleetStacks() {
		// The fault schedule comes from the seeded stream once per stack —
		// every trial replays the identical fault.
		victimDraw, jitter := rng.Intn(shards), rng.Intn(1<<16)

		runBase := func() *fleetPhase {
			base := startBenchFleet(w, stack, shards, instances, svclat, ttl)
			baseRep := submitBurst(base, stack.Name, instances)
			base.Close()
			if got := baseRep.Completed + baseRep.Failed + baseRep.Shed; got != baseRep.Submitted {
				fatal(fmt.Errorf("%s baseline: conservation broken: %d+%d+%d != %d",
					stack.Name, baseRep.Completed, baseRep.Failed, baseRep.Shed, baseRep.Submitted))
			}
			if baseRep.Failed != 0 || baseRep.Shed != 0 {
				fatal(fmt.Errorf("%s baseline: %d failed, %d shed on an undisturbed fleet",
					stack.Name, baseRep.Failed, baseRep.Shed))
			}
			return fleetPhaseReport(baseRep)
		}

		// One chaos trial: any shard that owns a meaningful share of the
		// burst is an eligible victim, and the crash lands near the middle
		// of the victim's share, after an invoke effect, jittered within
		// one instance's effect count.
		runChaos := func(fr *fleetFigure) *fleetPhase {
			f := startBenchFleet(w, stack, shards, instances, svclat, ttl)
			items := f.ShardEnv(0).ApprovedItemTypes()
			placed := make([]int, shards)
			for j := 0; j < instances; j++ {
				placed[f.Router.Place(fmt.Sprintf("order#%04d", j))]++
			}
			victim := victimDraw
			for placed[victim] < 4 { // skewed ring: walk to a shard with real load
				victim = (victim + 1) % shards
			}
			fr.Victim = victim
			fr.VictimRuns = placed[victim]
			fr.AtEffect = placed[victim]/2*items + 1 + jitter%items
			plan := &chaos.CrashPlan{
				Point:    journal.CrashAfterEffect,
				Activity: fleetInvokeActivity[stack.Name],
				AtEffect: fr.AtEffect,
			}
			chaos.Crash(f.ShardPrimary(victim).Rec, plan)

			// Watch the victim from the side: death observed -> supervisor
			// reaction (shard leaves Serving) -> promotion.
			watched := make(chan struct{})
			go func() {
				defer close(watched)
				for !f.ShardDead(victim) && f.ShardTakeovers(victim) == 0 {
					time.Sleep(time.Millisecond)
				}
				died := time.Now()
				for f.Health.State(victim) == shard.Serving && f.ShardTakeovers(victim) == 0 {
					time.Sleep(time.Millisecond)
				}
				fr.DetectMS = ms(time.Since(died))
				for f.ShardTakeovers(victim) == 0 {
					time.Sleep(time.Millisecond)
				}
				fr.FailoverMS = ms(time.Since(died))
			}()

			chaosRep := submitBurst(f, stack.Name, instances)
			<-watched
			if !plan.Fired() {
				fatal(fmt.Errorf("%s: crash plan never fired (victim %d, at effect %d)", stack.Name, victim, fr.AtEffect))
			}
			if got := chaosRep.Completed + chaosRep.Failed + chaosRep.Shed; got != chaosRep.Submitted {
				fatal(fmt.Errorf("%s chaos: conservation broken: %d+%d+%d != %d",
					stack.Name, chaosRep.Completed, chaosRep.Failed, chaosRep.Shed, chaosRep.Submitted))
			}
			if chaosRep.Takeovers != 1 {
				fatal(fmt.Errorf("%s chaos: %d takeovers, want exactly 1", stack.Name, chaosRep.Takeovers))
			}
			// Exactly the crashed run is lost; everything else completes.
			if chaosRep.Failed != 1 || chaosRep.Shed != 0 {
				fatal(fmt.Errorf("%s chaos: %d failed / %d shed, want 1 / 0", stack.Name, chaosRep.Failed, chaosRep.Shed))
			}
			// The old primary stays a fenced zombie.
			if err := f.ShardPrimary(victim).Rec.Deploy("zombie-probe"); !journal.IsFenced(err) {
				fatal(fmt.Errorf("%s chaos: zombie append on shard %d: got %v, want ErrFenced", stack.Name, victim, err))
			}
			fr.FencedWrites = f.ShardPrimary(victim).Rec.FencedWrites()
			fr.Epoch = f.ShardRecorder(victim).Epoch()
			fr.Takeovers = chaosRep.Takeovers
			f.Close()
			return fleetPhaseReport(chaosRep)
		}

		// Paired trials: each baseline runs back-to-back with its chaos
		// partner, and the reported figure is the pair with the median
		// retention ratio. The box runs the series on a single shared CPU
		// whose available cycles drift by more than the failover window
		// costs; pairing puts both sides of each ratio under the same
		// conditions, and the median drops the trials a co-tenant stomped.
		figs := make([]*fleetFigure, fleetTrials)
		for i := range figs {
			figs[i] = &fleetFigure{Stack: stack.Name}
			figs[i].Baseline = runBase()
			figs[i].Chaos = runChaos(figs[i])
			if figs[i].Baseline.GoodputPerSec > 0 {
				figs[i].GoodputRetention = figs[i].Chaos.GoodputPerSec / figs[i].Baseline.GoodputPerSec
			}
			fmt.Fprintf(os.Stderr, "  %s pair %d: chaos %.1f/s vs base %.1f/s -> retention %.0f%%\n",
				stack.Name, i+1, figs[i].Chaos.GoodputPerSec, figs[i].Baseline.GoodputPerSec,
				100*figs[i].GoodputRetention)
		}
		sort.Slice(figs, func(a, b int) bool {
			return figs[a].GoodputRetention < figs[b].GoodputRetention
		})
		fr := figs[len(figs)/2]

		if fr.GoodputRetention < rep.MinRetention {
			rep.MinRetention = fr.GoodputRetention
		}
		rep.Figures[stack.Name] = fr
		fmt.Fprintf(os.Stderr,
			"%-7s victim shard %d (%d/%d instances)  crash@effect %d  detect %.1fms  failover %.1fms  goodput %.1f/s vs %.1f/s  retention %.0f%%\n",
			stack.Name, fr.Victim, fr.VictimRuns, instances, fr.AtEffect, fr.DetectMS, fr.FailoverMS,
			fr.Chaos.GoodputPerSec, fr.Baseline.GoodputPerSec, 100*fr.GoodputRetention)
	}

	fmt.Fprintf(os.Stderr, "minimum goodput retention across stacks: %.0f%%\n", 100*rep.MinRetention)

	f := os.Stdout
	if out != "-" {
		var err error
		f, err = os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
}
