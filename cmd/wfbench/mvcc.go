package main

// The -mvcc series measures what the MVCC layer (DESIGN.md §13) buys:
//
//  1. The Figure 4/6/8 workloads at 1/2/4/8 scheduler workers — the
//     PR 4 matrix extended into a worker series — recording
//     instances/sec and the sqldb.lock_wait_ms distribution per point,
//     with the per-table lock-wait breakdown at 8 workers and the
//     BENCH_PR4.json 8-worker numbers embedded as the baseline.
//  2. A raw-engine mixed read/write series (70 % single-row UPDATE,
//     30 % aggregate scan) at 1/2/4/8 workers over disjoint tables —
//     the shape per-table latches parallelize — against the same
//     8-worker load forced onto ONE table, which is the old global
//     write lock's contention floor (every writer serializes, same-row
//     conflicts pay retry backoff). The ratio of the two 8-worker
//     lock-wait p99s is the headline reduction.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"wfsql"
	"wfsql/internal/obsv"
	"wfsql/internal/sched"
	"wfsql/internal/sqldb"
)

// lockWaitReport summarizes one sqldb.lock_wait_ms histogram.
type lockWaitReport struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

func lockWaitOf(s obsv.HistogramSummary) lockWaitReport {
	return lockWaitReport{Count: s.Count, P50MS: s.P50, P90MS: s.P90, P99MS: s.P99, MaxMS: s.Max}
}

// mvccFigureReport is one stack's worker series.
type mvccFigureReport struct {
	Stack string `json:"stack"`
	// Workers and LockWait are keyed by worker count ("1","2","4","8").
	Workers         map[string]*modeReport    `json:"workers"`
	LockWait        map[string]lockWaitReport `json:"lock_wait_ms"`
	LockWaitByTable map[string]lockWaitReport `json:"lock_wait_by_table_8w,omitempty"`
	Speedup8        float64                   `json:"speedup_8w"` // 8-worker / 1-worker inst/sec
	BaselinePR4     *pr4Baseline              `json:"baseline_pr4,omitempty"`
}

// pr4Baseline carries the pre-MVCC 8-worker numbers out of
// BENCH_PR4.json for side-by-side comparison.
type pr4Baseline struct {
	InstancesPerSec float64 `json:"instances_per_sec_8w"`
	LockWaitP99MS   float64 `json:"lock_wait_p99_ms_8w"`
}

// mixedPoint is one raw-engine mixed read/write measurement.
type mixedPoint struct {
	Workers   int            `json:"workers"`
	Tables    int            `json:"tables"`
	Ops       int            `json:"ops"`
	Failed    int            `json:"failed"`
	ElapsedMS float64        `json:"elapsed_ms"`
	OpsPerSec float64        `json:"ops_per_sec"`
	LockWait  lockWaitReport `json:"lock_wait_ms"`
}

// mvccReport is the whole BENCH_PR8.json document.
type mvccReport struct {
	Generated  string                       `json:"generated"`
	GoVersion  string                       `json:"go_version"`
	GOOS       string                       `json:"goos"`
	GOARCH     string                       `json:"goarch"`
	CPUs       int                          `json:"cpus"`
	Workload   wfsql.Workload               `json:"workload"`
	ServiceLat string                       `json:"service_latency"`
	Figures    map[string]*mvccFigureReport `json:"figures"`
	Engine     struct {
		RowsPerTable int           `json:"rows_per_table"`
		OpsPerWorker int           `json:"ops_per_worker"`
		WritePercent int           `json:"write_percent"`
		Disjoint     []*mixedPoint `json:"disjoint_tables"`
		SingleTable8 *mixedPoint   `json:"single_table_8w"`
		// single-table 8-worker p99 / disjoint 8-worker p99: how much
		// lock wait the per-table latches removed from the same load.
		LockWaitP99Reduction8W float64 `json:"lock_wait_p99_reduction_8w"`
	} `json:"engine_mixed"`
}

var mvccWorkerSeries = []int{1, 2, 4, 8}

func runMvccBench(w wfsql.Workload, instances int, svclat time.Duration, out string) {
	rep := &mvccReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Workload:   w,
		ServiceLat: svclat.String(),
		Figures:    map[string]*mvccFigureReport{},
	}
	baselines := loadPR4Baselines("BENCH_PR4.json")

	figures := []struct {
		name  string
		stack string
		run   func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error)
	}{
		{"Figure4_BIS", "BIS", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure4BISParallel(cfg)
		}},
		{"Figure6_WF", "WF", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure6WFParallel(cfg)
		}},
		{"Figure8_Oracle", "Oracle", func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
			return env.RunFigure8OracleParallel(cfg)
		}},
	}

	for _, fig := range figures {
		fr := &mvccFigureReport{
			Stack:       fig.stack,
			Workers:     map[string]*modeReport{},
			LockWait:    map[string]lockWaitReport{},
			BaselinePR4: baselines[fig.name],
		}
		for _, workers := range mvccWorkerSeries {
			env := wfsql.NewEnvironment(w)
			injectLatency(env, svclat)
			o := env.EnableObservability(obsv.New())
			sr, err := fig.run(env, wfsql.ParallelConfig{Instances: instances, Workers: workers})
			if err != nil {
				fatal(fmt.Errorf("%s x%d: %w", fig.name, workers, err))
			}
			env.DisableObservability()
			want := instances * env.ApprovedItemTypes()
			if got := env.ConfirmationCount(); got != want {
				fatal(fmt.Errorf("%s x%d: %d confirmations, want %d", fig.name, workers, got, want))
			}
			key := fmt.Sprintf("%d", workers)
			fr.Workers[key] = &modeReport{
				Workers:         sr.Workers,
				Instances:       sr.Jobs,
				Failed:          sr.Failed,
				ElapsedMS:       float64(sr.Elapsed) / float64(time.Millisecond),
				InstancesPerSec: sr.Throughput,
				QueueWaitP90MS:  o.M().Histogram("sched.queue_wait_ms").Summary().P90,
				RunP50MS:        o.M().Histogram("sched.run_ms").Summary().P50,
				RunP90MS:        o.M().Histogram("sched.run_ms").Summary().P90,
			}
			fr.LockWait[key] = lockWaitOf(o.M().Histogram("sqldb.lock_wait_ms").Summary())
			if workers == 8 {
				byTable := map[string]lockWaitReport{}
				for name, h := range o.M().Snapshot().Histograms {
					if tbl, ok := strings.CutPrefix(name, "sqldb.lock_wait_ms."); ok {
						byTable[tbl] = lockWaitOf(h)
					}
				}
				if len(byTable) > 0 {
					fr.LockWaitByTable = byTable
				}
			}
		}
		if s1 := fr.Workers["1"].InstancesPerSec; s1 > 0 {
			fr.Speedup8 = fr.Workers["8"].InstancesPerSec / s1
		}
		rep.Figures[fig.name] = fr
		fmt.Fprintf(os.Stderr, "%-14s x1 %.1f  x2 %.1f  x4 %.1f  x8 %.1f inst/s  speedup %.2fx  lock_wait p99@8w %.4f ms\n",
			fig.name, fr.Workers["1"].InstancesPerSec, fr.Workers["2"].InstancesPerSec,
			fr.Workers["4"].InstancesPerSec, fr.Workers["8"].InstancesPerSec,
			fr.Speedup8, fr.LockWait["8"].P99MS)
	}

	// Raw-engine mixed read/write series.
	const rowsPerTable, opsPerWorker, writePct = 64, 1500, 70
	rep.Engine.RowsPerTable = rowsPerTable
	rep.Engine.OpsPerWorker = opsPerWorker
	rep.Engine.WritePercent = writePct
	for _, workers := range mvccWorkerSeries {
		p := runMixedPoint(workers, workers, rowsPerTable, opsPerWorker, writePct)
		rep.Engine.Disjoint = append(rep.Engine.Disjoint, p)
		fmt.Fprintf(os.Stderr, "engine mixed  x%d disjoint  %.0f ops/s  lock_wait p99 %.4f ms\n",
			workers, p.OpsPerSec, p.LockWait.P99MS)
	}
	floor := runMixedPoint(8, 1, rowsPerTable, opsPerWorker, writePct)
	rep.Engine.SingleTable8 = floor
	fmt.Fprintf(os.Stderr, "engine mixed  x8 single-table  %.0f ops/s  lock_wait p99 %.4f ms\n",
		floor.OpsPerSec, floor.LockWait.P99MS)
	if d8 := rep.Engine.Disjoint[len(rep.Engine.Disjoint)-1]; d8.LockWait.P99MS > 0 {
		rep.Engine.LockWaitP99Reduction8W = floor.LockWait.P99MS / d8.LockWait.P99MS
		fmt.Fprintf(os.Stderr, "engine mixed  lock_wait p99 reduction at 8 workers: %.1fx\n",
			rep.Engine.LockWaitP99Reduction8W)
	}

	f := os.Stdout
	if out != "-" {
		var err error
		f, err = os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
}

// runMixedPoint drives `workers` goroutines (one session each) at the
// engine directly: writePct% single-row UPDATEs, the rest aggregate
// scans, each worker targeting table `worker % tables` — tables ==
// workers is the disjoint shape, tables == 1 the contention floor.
func runMixedPoint(workers, tables, rowsPerTable, opsPerWorker, writePct int) *mixedPoint {
	db := sqldb.Open("mvccbench")
	seed := db.Session()
	for t := 0; t < tables; t++ {
		if _, err := seed.Exec(fmt.Sprintf("CREATE TABLE t%d (id INTEGER PRIMARY KEY, v INTEGER)", t)); err != nil {
			fatal(err)
		}
		for r := 0; r < rowsPerTable; r++ {
			if _, err := seed.Exec(fmt.Sprintf("INSERT INTO t%d VALUES (?, 0)", t), sqldb.Int(int64(r))); err != nil {
				fatal(err)
			}
		}
	}
	o := obsv.New()
	db.SetObservability(o)

	var wg sync.WaitGroup
	var failed int64
	var mu sync.Mutex
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			tbl := w % tables
			myFailed := int64(0)
			for i := 0; i < opsPerWorker; i++ {
				var err error
				if rng.Intn(100) < writePct {
					id := rng.Intn(rowsPerTable)
					_, err = s.Exec(fmt.Sprintf("UPDATE t%d SET v = v + 1 WHERE id = ?", tbl), sqldb.Int(int64(id)))
				} else {
					_, err = s.Exec(fmt.Sprintf("SELECT COUNT(*) FROM t%d WHERE v > ?", tbl), sqldb.Int(0))
				}
				if err != nil {
					// Conflict-retry exhaustion under extreme same-row
					// contention is the workload's signal, not a bench bug.
					myFailed++
				}
			}
			mu.Lock()
			failed += myFailed
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	db.SetObservability(nil)

	ops := workers * opsPerWorker
	return &mixedPoint{
		Workers:   workers,
		Tables:    tables,
		Ops:       ops,
		Failed:    int(failed),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		OpsPerSec: float64(ops) / elapsed.Seconds(),
		LockWait:  lockWaitOf(o.M().Histogram("sqldb.lock_wait_ms").Summary()),
	}
}

// loadPR4Baselines pulls the 8-worker instances/sec and lock-wait p99
// per figure out of a committed BENCH_PR4.json, if present.
func loadPR4Baselines(path string) map[string]*pr4Baseline {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var doc struct {
		Figures map[string]struct {
			Parallel struct {
				InstancesPerSec float64 `json:"instances_per_sec"`
			} `json:"parallel"`
			Metrics struct {
				Histograms map[string]struct {
					P99 float64 `json:"p99"`
				} `json:"histograms"`
			} `json:"metrics"`
		} `json:"figures"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil
	}
	out := map[string]*pr4Baseline{}
	for name, fig := range doc.Figures {
		out[name] = &pr4Baseline{
			InstancesPerSec: fig.Parallel.InstancesPerSec,
			LockWaitP99MS:   fig.Metrics.Histograms["sqldb.lock_wait_ms"].P99,
		}
	}
	return out
}
