package main

// The -failover mode measures warm-standby takeover: each stack runs a
// journaled burst on a lease-fenced primary with a standby tailing the
// WAL, the primary is killed mid-burst (crash injection + heartbeat
// stop), and the standby detects expiry, catches up, promotes, recovers
// the in-flight instance, and runs a second burst as the new primary.
// Downtime is the wall-clock from the kill to the first instance
// completed on the promoted side (lease-expiry detection dominates it —
// the replication itself is warm). Goodput retention compares completed
// instances per second across the whole failover timeline against the
// same total burst on an undisturbed journaled primary.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"wfsql"
	"wfsql/internal/chaos"
	"wfsql/internal/engine"
	"wfsql/internal/journal"
	"wfsql/internal/sched"
)

// failoverStack wires one product stack's burst and recovery.
type failoverStack struct {
	name      string
	invokeAct string
	run       func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error)
	recover   func(host *wfsql.Environment, rec *journal.Recorder) error
}

func failoverStacks() []failoverStack {
	return []failoverStack{
		{
			name: "Figure4_BIS", invokeAct: "invoke",
			run: func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
				return env.RunFigure4BISParallel(cfg)
			},
			recover: func(host *wfsql.Environment, rec *journal.Recorder) error {
				d, err := host.Engine.Deploy(host.BuildFigure4BISResilient(wfsql.ResilienceConfig{}))
				if err != nil {
					return err
				}
				_, err = engine.Recover(rec, map[string]*engine.Deployment{"Figure4": d})
				return err
			},
		},
		{
			name: "Figure6_WF", invokeAct: "invoke",
			run: func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
				return env.RunFigure6WFParallel(cfg)
			},
			recover: func(host *wfsql.Environment, rec *journal.Recorder) error {
				root := host.BuildFigure6WFResilient(wfsql.ResilienceConfig{})
				for _, ij := range rec.InFlight() {
					if _, err := host.Runtime.Resume(root, ij); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			name: "Figure8_Oracle", invokeAct: "Invoke",
			run: func(env *wfsql.Environment, cfg wfsql.ParallelConfig) (sched.Report, error) {
				return env.RunFigure8OracleParallel(cfg)
			},
			recover: func(host *wfsql.Environment, rec *journal.Recorder) error {
				p, err := host.BuildFigure8OracleResilient(wfsql.ResilienceConfig{})
				if err != nil {
					return err
				}
				d, err := host.Engine.Deploy(p)
				if err != nil {
					return err
				}
				_, err = engine.Recover(rec, map[string]*engine.Deployment{"Figure8": d})
				return err
			},
		},
	}
}

// failoverPhase is one burst's timing.
type failoverPhase struct {
	Instances       int     `json:"instances"`
	Failed          int     `json:"failed"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	InstancesPerSec float64 `json:"instances_per_sec"`
}

// failoverFigure is the per-stack section of BENCH_PR6.json.
type failoverFigure struct {
	Stack             string         `json:"stack"`
	Baseline          *failoverPhase `json:"baseline"` // same topology, never killed, 2×phase instances (reference)
	PreCrash          *failoverPhase `json:"pre_crash_burst"`
	ReplicaLagRecords int            `json:"replica_lag_records_at_kill"`
	ReplicaLagMS      float64        `json:"replica_lag_ms_at_kill"`
	DetectMS          float64        `json:"detect_ms"`   // kill → lease observed expired
	CatchupMS         float64        `json:"catchup_ms"`  // final WAL drain on the standby
	TakeoverMS        float64        `json:"takeover_ms"` // promote + rebuild + recover in-flight
	DowntimeMS        float64        `json:"downtime_to_first_completed_ms"`
	PostTakeover      *failoverPhase `json:"post_takeover_burst"`
	TotalCompleted    int            `json:"total_completed"`
	TotalElapsedMS    float64        `json:"total_elapsed_ms"`
	GoodputPerSec     float64        `json:"goodput_per_sec"`   // completed over the whole failover window
	GoodputRetention  float64        `json:"goodput_retention"` // vs the pre-crash (steady-state) rate
	FencedWrites      int64          `json:"old_primary_fenced_writes"`
	Epoch             int64          `json:"takeover_epoch"`
}

// failoverReport is the whole BENCH_PR6.json document.
type failoverReport struct {
	Generated      string                     `json:"generated"`
	GoVersion      string                     `json:"go_version"`
	GOOS           string                     `json:"goos"`
	GOARCH         string                     `json:"goarch"`
	CPUs           int                        `json:"cpus"`
	Workload       wfsql.Workload             `json:"workload"`
	ServiceLat     string                     `json:"service_latency"`
	Workers        int                        `json:"workers"`
	LeaseTTL       string                     `json:"lease_ttl"`
	PhaseInstances int                        `json:"phase_instances"`
	Figures        map[string]*failoverFigure `json:"figures"`
	MinRetention   float64                    `json:"min_goodput_retention"`
}

// runFailoverBench drives the failover series: per stack, a baseline
// burst on an undisturbed primary, then kill-and-takeover.
func runFailoverBench(w wfsql.Workload, phaseInstances, workers int, svclat, ttl time.Duration, out string) {
	rep := failoverReport{
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		Workload:       w,
		ServiceLat:     svclat.String(),
		Workers:        workers,
		LeaseTTL:       ttl.String(),
		PhaseInstances: phaseInstances,
		Figures:        map[string]*failoverFigure{},
	}
	rep.MinRetention = 1
	heartbeat := ttl / 5
	// The fault schedule derives from the workload seed, so -seed replays
	// an identical series — same crash points, same report shape.
	rng := rand.New(rand.NewSource(w.Seed))

	for _, stack := range failoverStacks() {
		fr := &failoverFigure{Stack: stack.name}
		cfg := wfsql.ParallelConfig{Instances: phaseInstances, Workers: workers}

		// Baseline: the same total burst on the same topology — journaled
		// primary, heartbeat, warm standby following — that never fails.
		// Retention then measures what the failover event itself costs,
		// not what running a follower costs.
		fr.Baseline = runFailoverBaseline(w, svclat, ttl, heartbeat, stack, 2*phaseInstances, workers)

		// Failover run.
		env := wfsql.NewEnvironment(w)
		injectLatency(env, svclat)
		items := env.ApprovedItemTypes()
		dir := mkTemp("wfbench-failover")
		defer os.RemoveAll(dir)
		pri, err := env.StartPrimary(dir, "primary-a", ttl)
		if err != nil {
			fatal(fmt.Errorf("%s: start primary: %w", stack.name, err))
		}
		pri.Heartbeat(heartbeat)

		ws := wfsql.NewWarmStandby(dir, ttl)
		ws.HeartbeatEvery = heartbeat
		stopFollow := ws.Follow(heartbeat)

		// Kill mid-burst: the crash fires around the burst's halfway
		// point, after an invoke effect (the widest-window crash point),
		// seed-jittered within one instance's worth of effects.
		plan := &chaos.CrashPlan{
			Point:    journal.CrashAfterEffect,
			Activity: stack.invokeAct,
			AtEffect: phaseInstances/2*items + 1 + rng.Intn(items),
		}
		chaos.Crash(pri.Rec, plan)

		t0 := time.Now()
		sr1, err := stack.run(env, cfg)
		if !journal.IsCrash(err) {
			fatal(fmt.Errorf("%s: burst: want a crash, got %v", stack.name, err))
		}
		kill := time.Now()
		pri.Pause() // heartbeat stops: the primary process is dead
		stopFollow() // joins: the standby is frozen where the kill caught it
		atKill := ws.Standby.Delivered()
		if lt := ws.Standby.LastRecordTime(); !lt.IsZero() {
			fr.ReplicaLagMS = ms(kill.Sub(lt))
		}
		fr.PreCrash = phaseReport(sr1, kill.Sub(t0))

		// The standby detects the lease expiry...
		for {
			st, err := ws.Lease.Read()
			if err == nil && time.Since(st.Renewed()) > ttl {
				break
			}
			time.Sleep(heartbeat / 2)
		}
		detect := time.Now()

		// ...drains the tail of the WAL (lag-at-kill is what it had not
		// yet absorbed when the primary died)...
		if _, err := ws.CatchUp(); err != nil {
			fatal(fmt.Errorf("%s: catch up: %w", stack.name, err))
		}
		fr.ReplicaLagRecords = int(ws.Standby.Delivered() - atKill)
		caught := time.Now()

		// ...and takes over, recovering the in-flight instance. When
		// Takeover returns, that instance has completed on the new
		// primary — downtime ends here.
		host, rec2, err := ws.Takeover(env, "standby-b", stack.recover)
		if err != nil {
			fatal(fmt.Errorf("%s: takeover: %w", stack.name, err))
		}
		first := time.Now()
		fr.DetectMS = ms(detect.Sub(kill))
		fr.CatchupMS = ms(caught.Sub(detect))
		fr.TakeoverMS = ms(first.Sub(caught))
		fr.DowntimeMS = ms(first.Sub(kill))

		// The old primary is fenced for good.
		if err := pri.Rec.Deploy("zombie-probe"); !journal.IsFenced(err) {
			fatal(fmt.Errorf("%s: zombie append: got %v, want ErrFenced", stack.name, err))
		}
		fr.FencedWrites = pri.Rec.FencedWrites()
		fr.Epoch = rec2.Epoch()

		// Second burst on the promoted primary (Takeover already started
		// its heartbeat via HeartbeatEvery).
		sr2, err := stack.run(host, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: post-takeover burst: %w", stack.name, err))
		}
		end := time.Now()
		ws.StopHeartbeat()
		fr.PostTakeover = phaseReport(sr2, end.Sub(first))
		rec2.Close()

		fr.TotalCompleted = 2 * phaseInstances
		if got, want := host.ConfirmationCount(), fr.TotalCompleted*items; got != want {
			fatal(fmt.Errorf("%s: %d confirmations across failover, want %d (instances × item types)",
				stack.name, got, want))
		}
		fr.TotalElapsedMS = ms(end.Sub(t0))
		fr.GoodputPerSec = float64(fr.TotalCompleted) / end.Sub(t0).Seconds()
		if fr.PreCrash.InstancesPerSec > 0 {
			// Retention over the failover window vs steady state: the
			// pre-crash burst is the steady-state rate of this very run,
			// so the ratio isolates what the downtime cost.
			fr.GoodputRetention = fr.GoodputPerSec / fr.PreCrash.InstancesPerSec
		}
		if fr.GoodputRetention < rep.MinRetention {
			rep.MinRetention = fr.GoodputRetention
		}
		rep.Figures[stack.name] = fr
		fmt.Fprintf(os.Stderr,
			"%-14s downtime %.1fms (detect %.1f, catchup %.1f, takeover %.1f)  lag %d recs / %.1fms  goodput %.1f/s vs steady %.1f/s  retention %.0f%%\n",
			stack.name, fr.DowntimeMS, fr.DetectMS, fr.CatchupMS, fr.TakeoverMS,
			fr.ReplicaLagRecords, fr.ReplicaLagMS, fr.GoodputPerSec, fr.PreCrash.InstancesPerSec, 100*fr.GoodputRetention)
	}

	fmt.Fprintf(os.Stderr, "minimum goodput retention across stacks: %.0f%%\n", 100*rep.MinRetention)

	f := os.Stdout
	if out != "-" {
		var err error
		f, err = os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
}

// runFailoverBaseline runs one undisturbed journaled burst — with a
// warm standby following, matching the failover run's topology — and
// reports its throughput.
func runFailoverBaseline(w wfsql.Workload, svclat, ttl, heartbeat time.Duration, stack failoverStack, instances, workers int) *failoverPhase {
	env := wfsql.NewEnvironment(w)
	injectLatency(env, svclat)
	dir := mkTemp("wfbench-baseline")
	defer os.RemoveAll(dir)
	pri, err := env.StartPrimary(dir, "primary-a", ttl)
	if err != nil {
		fatal(fmt.Errorf("%s baseline: %w", stack.name, err))
	}
	pri.Heartbeat(heartbeat)
	ws := wfsql.NewWarmStandby(dir, ttl)
	stopFollow := ws.Follow(heartbeat)
	defer stopFollow()
	t0 := time.Now()
	sr, err := stack.run(env, wfsql.ParallelConfig{Instances: instances, Workers: workers})
	if err != nil {
		fatal(fmt.Errorf("%s baseline: %w", stack.name, err))
	}
	elapsed := time.Since(t0)
	if err := pri.Close(); err != nil {
		fatal(fmt.Errorf("%s baseline close: %w", stack.name, err))
	}
	if got, want := env.ConfirmationCount(), instances*env.ApprovedItemTypes(); got != want {
		fatal(fmt.Errorf("%s baseline: %d confirmations, want %d", stack.name, got, want))
	}
	return phaseReport(sr, elapsed)
}

func phaseReport(sr sched.Report, elapsed time.Duration) *failoverPhase {
	p := &failoverPhase{Instances: sr.Jobs, Failed: sr.Failed, ElapsedMS: ms(elapsed)}
	if s := elapsed.Seconds(); s > 0 {
		p.InstancesPerSec = float64(sr.Jobs-sr.Failed) / s
	}
	return p
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func mkTemp(prefix string) string {
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		fatal(err)
	}
	return dir
}
